"""Classical forward-backward smoothing for the hierarchical HMM of Sec. 2.2.

Used as an independent ground truth against which SPPL's symbolic smoothing
(conditioning the translated sum-product expression on the observations and
querying each hidden state) is validated in the test suite and benchmarks.
"""

from __future__ import annotations

import math
from typing import Dict
from typing import List
from typing import Sequence

import numpy as np
from scipy import stats


def _log_observation(x: float, y: float, mu_x: float, mu_y: float) -> float:
    return float(stats.norm(mu_x, 1.0).logpdf(x)) + float(stats.poisson(mu_y).logpmf(y))


def _forward_backward_single(
    xs: Sequence[float],
    ys: Sequence[float],
    p_initial: Sequence[float],
    p_transition: Sequence[float],
    mu_x: Sequence[float],
    mu_y: Sequence[float],
):
    """Forward-backward for a two-state HMM with Normal+Poisson emissions.

    ``p_transition[z]`` is the probability of transitioning *to state 1*
    from state ``z``.  Returns (log evidence, posterior marginals of Z_t=1).
    """
    n = len(xs)
    log_emission = np.zeros((n, 2))
    for t in range(n):
        for z in (0, 1):
            log_emission[t, z] = _log_observation(xs[t], ys[t], mu_x[z], mu_y[z])

    log_transition = np.zeros((2, 2))
    for z_prev in (0, 1):
        log_transition[z_prev, 1] = math.log(p_transition[z_prev])
        log_transition[z_prev, 0] = math.log(1.0 - p_transition[z_prev])

    log_alpha = np.zeros((n, 2))
    log_alpha[0] = [math.log(p_initial[z]) + log_emission[0, z] for z in (0, 1)]
    for t in range(1, n):
        for z in (0, 1):
            log_alpha[t, z] = log_emission[t, z] + np.logaddexp(
                log_alpha[t - 1, 0] + log_transition[0, z],
                log_alpha[t - 1, 1] + log_transition[1, z],
            )

    log_beta = np.zeros((n, 2))
    for t in range(n - 2, -1, -1):
        for z in (0, 1):
            log_beta[t, z] = np.logaddexp(
                log_transition[z, 0] + log_emission[t + 1, 0] + log_beta[t + 1, 0],
                log_transition[z, 1] + log_emission[t + 1, 1] + log_beta[t + 1, 1],
            )

    log_evidence = np.logaddexp(log_alpha[n - 1, 0], log_alpha[n - 1, 1])
    posteriors = []
    for t in range(n):
        log_joint = log_alpha[t] + log_beta[t]
        norm = np.logaddexp(log_joint[0], log_joint[1])
        posteriors.append(float(np.exp(log_joint[1] - norm)))
    return float(log_evidence), posteriors


def hmm_smoothing_forward_backward(
    xs: Sequence[float],
    ys: Sequence[float],
    p_separated: float = 0.4,
    p_initial: Sequence[float] = (0.5, 0.5),
    p_transition: Sequence[float] = (0.2, 0.8),
    mu_x: Sequence[Sequence[float]] = ((5.0, 7.0), (5.0, 15.0)),
    mu_y: Sequence[Sequence[float]] = ((5.0, 8.0), (3.0, 8.0)),
) -> Dict[str, object]:
    """Exact smoothing in the hierarchical HMM by marginalizing ``separated``.

    Returns the posterior marginals ``P(Z_t = 1 | x, y)`` and the posterior
    probability of ``separated = 1``.
    """
    results: List[Dict[str, object]] = []
    for separated in (0, 1):
        log_evidence, posteriors = _forward_backward_single(
            xs, ys, p_initial, p_transition, mu_x[separated], mu_y[separated]
        )
        log_prior = math.log(p_separated if separated == 1 else 1.0 - p_separated)
        results.append(
            {"log_joint": log_evidence + log_prior, "posteriors": posteriors}
        )

    log_total = np.logaddexp(results[0]["log_joint"], results[1]["log_joint"])
    weights = [math.exp(r["log_joint"] - log_total) for r in results]
    n = len(xs)
    smoothed = [
        weights[0] * results[0]["posteriors"][t] + weights[1] * results[1]["posteriors"][t]
        for t in range(n)
    ]
    return {
        "smoothed": smoothed,
        "p_separated": weights[1],
        "log_evidence": float(log_total),
    }
