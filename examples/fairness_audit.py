"""Auditing decision-tree classifiers for fairness (Sec. 6.1, Table 2).

For each decision tree / population model pair, the audit computes the exact
fairness ratio of Eq. 7

    P[hire | minority, qualified] / P[hire | majority, qualified]

by translating the combined population + decision program once and
conditioning it twice.  For one task the result is cross-checked against an
adaptive sampling verifier (the VeriFair-style baseline), illustrating the
speed and determinism gap the paper reports.

Run with::

    python examples/fairness_audit.py
"""

import time

from repro.baselines import SamplingFairnessVerifier
from repro.workloads.fairness import FairnessTask
from repro.workloads.fairness import sppl_fairness_judgment
from repro.workloads.fairness.decision_trees import HIRE_EVENT
from repro.workloads.fairness.population import MINORITY_EVENT
from repro.workloads.fairness.population import QUALIFIED_EVENT


def main() -> None:
    tasks = [
        FairnessTask("DT4", "independent"),
        FairnessTask("DT4", "bayes_net_1"),
        FairnessTask("DT16", "bayes_net_1"),
        FairnessTask("DT16", "bayes_net_2"),
        FairnessTask("DT44", "bayes_net_2"),
    ]

    print("%-22s %-8s %-8s %-8s %-10s" % ("task", "ratio", "judgment", "LoC", "seconds"))
    for task in tasks:
        result = sppl_fairness_judgment(task)
        print(
            "%-22s %-8.3f %-8s %-8d %-10.3f"
            % (task.name, result.ratio, result.judgment, task.lines_of_code(), result.total_seconds)
        )

    # Cross-check one task with the sampling-based verifier.
    task = tasks[1]
    print("\ncross-checking %s with the sampling verifier..." % (task.name,))
    verifier = SamplingFairnessVerifier(
        command=task.program(),
        decision=HIRE_EVENT,
        minority=MINORITY_EVENT,
        qualified=QUALIFIED_EVENT,
        seed=0,
    )
    start = time.perf_counter()
    sampled = verifier.verify(epsilon=0.15, batch_size=5000, max_samples=60000)
    elapsed = time.perf_counter() - start
    exact = sppl_fairness_judgment(task)
    print("  exact   : ratio=%.3f judgment=%s in %.3fs" % (exact.ratio, exact.judgment, exact.total_seconds))
    print(
        "  sampling: ratio=%.3f judgment=%s in %.2fs (%d samples, converged=%s)"
        % (sampled.ratio, sampled.judgment, elapsed, sampled.samples, sampled.converged)
    )
    print("  speedup of exact verification: %.0fx" % (elapsed / max(exact.total_seconds, 1e-9),))


if __name__ == "__main__":
    main()
