"""Primitive distribution interface used by sum-product expression leaves.

A :class:`Distribution` is a fully-specified univariate probability measure
over the Outcomes domain (Lst. 1e of the paper): a continuous real
distribution restricted to an interval, an integer-valued distribution
restricted to a range, an explicit finite distribution on reals, a point
mass (atom), or a nominal (string-valued) distribution.

All probability accounting is performed in log space so that conditioning on
many observations (e.g. a 100-step HMM) does not underflow.
"""

from __future__ import annotations

import math
from abc import ABC
from abc import abstractmethod
from typing import List
from typing import Optional
from typing import Tuple

import numpy as np

from ..sets import OutcomeSet

#: Log of zero probability.
NEG_INF = -math.inf


def log_add(log_values) -> float:
    """Numerically-stable log-sum-exp of an iterable of log values.

    The transcendentals are evaluated with numpy's ``exp``/``log`` kernels
    rather than ``math.exp``/``math.log``: the compiled columnar engine
    (:mod:`repro.spe.compiled`) evaluates the same reduction with
    vectorized numpy sweeps, and numpy's scalar and array kernels agree
    bit-for-bit while ``math.*`` occasionally differs from them by one
    ulp.  Keeping both execution paths on one kernel family is what makes
    compiled results bit-identical to interpreted ones.  The accumulation
    order (peak by first-maximal scan, then a sequential left-to-right
    sum of the shifted exponentials) is likewise mirrored by the compiled
    sweep, so associativity matches exactly.
    """
    values = [v for v in log_values]
    if not values:
        return NEG_INF
    peak = max(values)
    if peak == NEG_INF:
        return NEG_INF
    if peak == math.inf:
        return math.inf
    if len(values) == 1:
        # exp(peak - peak) == 1.0 and log(1.0) == 0.0 exactly.
        return peak + 0.0
    with np.errstate(over="ignore", invalid="ignore", divide="ignore"):
        shifted = np.exp(np.asarray(values, dtype=float) - peak)
        total = 0.0
        for term in shifted.tolist():
            total += term
        return peak + float(np.log(total))


def log_subtract(log_a: float, log_b: float) -> float:
    """Return ``log(exp(log_a) - exp(log_b))``; requires ``log_a >= log_b``."""
    if log_b == NEG_INF:
        return log_a
    if log_a < log_b:
        raise ValueError("log_subtract requires log_a >= log_b.")
    if log_a == log_b:
        return NEG_INF
    return log_a + math.log1p(-math.exp(log_b - log_a))


def safe_log(x: float) -> float:
    """Logarithm that maps non-positive numbers to -inf instead of raising."""
    if x <= 0.0:
        return NEG_INF
    return math.log(x)


class Distribution(ABC):
    """A univariate primitive distribution over the Outcomes domain."""

    #: True when the distribution admits a density w.r.t. Lebesgue measure.
    is_continuous: bool = False

    def structural_key(self) -> tuple:
        """A hashable key identifying the distribution up to structural equality.

        Two distributions with equal keys define the same probability
        measure; the key is what the hash-consing layer of the SPE module
        uses to intern structurally-equal leaves.  The default is identity
        (no structural sharing) so that exotic subclasses stay correct.
        """
        return ("id", id(self))

    @abstractmethod
    def support(self) -> OutcomeSet:
        """Return the support as an outcome set."""

    @abstractmethod
    def sample(self, rng) -> object:
        """Draw a single value using the numpy random generator ``rng``."""

    @abstractmethod
    def logprob(self, values: OutcomeSet) -> float:
        """Return the log probability that the variable lies in ``values``."""

    @abstractmethod
    def logpdf(self, value) -> float:
        """Return the log density (or log pmf) at a single value."""

    @abstractmethod
    def condition(self, values: OutcomeSet) -> List[Tuple["Distribution", float]]:
        """Condition on ``{X in values}``.

        Returns a list of ``(distribution, log_weight)`` pairs, one per
        disjoint component of ``values`` with positive probability.  The
        weights are the (unnormalized) log probabilities of the components;
        an empty list indicates the conditioning event has probability zero.
        """

    @abstractmethod
    def constrain(self, value) -> Optional[Tuple["Distribution", float]]:
        """Condition on the (possibly measure-zero) equality ``{X == value}``.

        Returns ``(point_mass_distribution, log_density)`` when the density
        or mass at ``value`` is positive, and ``None`` otherwise.
        """

    def prob(self, values: OutcomeSet) -> float:
        """Probability that the variable lies in ``values``."""
        return math.exp(self.logprob(values))

    def sample_many(self, rng, n: int):
        """Draw ``n`` independent values.

        Subclasses override this with a vectorized implementation (a single
        numpy/scipy call) where possible; the fallback loops over
        :meth:`sample`.  The result is indexable and of length ``n``
        (typically a numpy array).
        """
        return [self.sample(rng) for _ in range(n)]
