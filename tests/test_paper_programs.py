"""End-to-end tests for additional programs taken directly from the paper text."""

import math

import pytest

from repro.compiler import compile_sppl
from repro.engine import SpplModel
from repro.transforms import Id


class TestMixedTypeProgram:
    """The mixed-type example of Sec. 3: X is a string, a continuous value,
    or a discrete real depending on the branch taken."""

    SOURCE = """
Z ~ normal(0, 1)
if Z <= 0:
    X ~ "negative"
elif Z < 4:
    X ~ 2*exp(Z)
else:
    X ~ atomic(4)
"""

    @pytest.fixture(scope="class")
    def model(self):
        return SpplModel.from_source(self.SOURCE)

    def test_branch_probabilities(self, model):
        X = Id("X")
        assert model.prob(X == "negative") == pytest.approx(0.5, abs=1e-9)
        assert model.prob(X == 4) == pytest.approx(3.167e-5, rel=1e-2)

    def test_continuous_branch_is_transform_of_z(self, model):
        X, Z = Id("X"), Id("Z")
        # On the middle branch X = 2*exp(Z) in (2, 2e^4); the atomic branch
        # contributes its point mass at 4 to any interval containing it.
        p_branch = model.prob((Z > 0) & (Z < 4))
        p_atom = model.prob(Z >= 4)
        # A real-valued constraint does not capture the string-valued branch:
        # only the continuous branch (via the preimage of 2*exp(Z)) and the
        # atom at 4 contribute.
        assert model.prob(X <= 2 * math.e) == pytest.approx(
            model.prob((Z > 0) & (Z <= 1)) + p_atom, abs=1e-9
        )
        assert model.prob((X > 2) & (X <= 2 * math.exp(4))) == pytest.approx(
            p_branch + p_atom, abs=1e-9
        )

    def test_conditioning_on_string_value(self, model):
        Z = Id("Z")
        posterior = model.condition(Id("X") == "negative")
        assert posterior.prob(Z <= 0) == pytest.approx(1.0)

    def test_conditioning_on_transformed_range(self, model):
        Z = Id("Z")
        # The range (2, 3.9) excludes both the string branch and the atom at 4,
        # so the posterior is supported entirely on 0 < Z < ln(3.9/2) < 1.
        posterior = model.condition((Id("X") > 2) & (Id("X") < 3.9))
        assert posterior.prob((Z > 0) & (Z < 1)) == pytest.approx(1.0, abs=1e-9)


class TestDiscretizationWorkaround:
    """The valid program of Lst. 4: a continuous parameter handled by
    discretization (switch over binspace) and truncation (condition)."""

    SOURCE = """
mu ~ beta(a=4, b=3, scale=7)
for m in switch(mu, binspace(0, 7, n=10)):
    num_items ~ poisson(m.left + 0.35)
condition(num_items < 12)
"""

    def test_program_translates_and_respects_truncation(self):
        # ``m.left`` is not part of the supported surface syntax; build the
        # equivalent program with midpoints supplied as constants instead.
        source = """
mu ~ beta(a=4, b=3, scale=7)
for k in switch(mu, bins):
    num_items ~ poisson(mids[k])
condition(num_items < 12)
"""
        from repro.compiler import binspace

        bins = binspace(0, 7, 10)
        mids = {b: (b.left + b.right) / 2.0 for b in bins}
        model = SpplModel.from_source(
            source, constants={"bins": bins, "mids": mids}
        )
        num_items = Id("num_items")
        assert model.prob(num_items >= 12) == pytest.approx(0.0, abs=1e-12)
        assert model.prob(num_items <= 11) == pytest.approx(1.0, abs=1e-12)

    def test_discretized_parameter_tracks_latent_rate(self):
        from repro.compiler import binspace

        bins = binspace(0, 7, 10)
        mids = {b: (b.left + b.right) / 2.0 for b in bins}
        source = """
mu ~ beta(a=4, b=3, scale=7)
for k in switch(mu, bins):
    num_items ~ poisson(mids[k])
"""
        model = SpplModel.from_source(source, constants={"bins": bins, "mids": mids})
        mu, num_items = Id("mu"), Id("num_items")
        high = model.condition(mu > 5).expectation("num_items")
        low = model.condition(mu < 2).expectation("num_items")
        assert high > low

    def test_invalid_program_with_random_parameter_is_rejected(self):
        from repro.compiler import SpplParseError

        source = """
mu ~ beta(a=4, b=3, scale=7)
num_items ~ poisson(mu)
"""
        with pytest.raises(SpplParseError):
            compile_sppl(source)


class TestIndianGpaQueries:
    """The textual queries of Fig. 2b/2c expressed through the string API."""

    @pytest.fixture(scope="class")
    def model(self):
        from repro.workloads.indian_gpa import SOURCE

        return SpplModel.from_source(SOURCE)

    def test_marginal_queries(self, model):
        assert model.prob("Nationality == 'USA'") == pytest.approx(0.5)
        assert model.prob("Perfect == 1") == pytest.approx(0.125)
        assert model.prob("GPA <= 120/10") == pytest.approx(1.0)

    def test_joint_query_of_fig2c(self, model):
        value = model.prob(
            "(Perfect == 1) or (Nationality == 'India') and (GPA > 3)"
        )
        manual = model.prob(
            (Id("Perfect") == 1)
            | ((Id("Nationality") == "India") & (Id("GPA") > 3))
        )
        assert value == pytest.approx(manual)
