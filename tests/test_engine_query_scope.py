"""Tests for the public ``SpplModel.query_scope`` pinning context manager."""

import threading

from repro.engine import SpplModel
from repro.spe import QueryCache
from repro.workloads import hmm
from repro.workloads import indian_gpa


def small_model(bound):
    return SpplModel(indian_gpa.model().spe, cache_size=bound)


class TestQueryScope:
    def test_batch_entries_pinned_until_scope_exits(self):
        bound = 20
        model = small_model(bound)
        with model.query_scope():
            for i in range(200):
                model.logprob("GPA > %r" % (0.01 * i))
            # The open scope pins everything the batch touched: the cache
            # may overshoot its bound rather than evict mid-batch.
            assert model.cache.total_entries() > bound
        # On exit the overshoot is reclaimed.
        assert model.cache.total_entries() <= bound

    def test_eviction_happens_without_scope(self):
        bound = 20
        model = small_model(bound)
        for i in range(200):
            model.logprob("GPA > %r" % (0.01 * i))
        assert model.cache.total_entries() <= bound
        assert model.cache.evictions > 0

    def test_results_identical_inside_and_outside_scope(self):
        model = indian_gpa.model()
        events = ["GPA > %r" % (0.3 * i) for i in range(10)]
        with model.query_scope():
            inside = [model.logprob(event) for event in events]
        fresh = SpplModel(indian_gpa.model().spe, cache=False)
        assert inside == [fresh.logprob(event) for event in events]

    def test_scope_covers_posterior_chains(self):
        bound = 30
        model = SpplModel(hmm.model(2).spe, cache_size=bound)
        with model.query_scope():
            posterior = model.condition("X[0] < 0.5")
            for i in range(100):
                posterior.logprob("Z[1] == %d" % (i % 2))
                model.logprob("X[1] < %r" % (0.01 * i))
        assert model.cache.total_entries() <= bound

    def test_scopes_nest(self):
        model = small_model(10)
        with model.query_scope():
            with model.query_scope():
                model.logprob("GPA > 3")
            model.logprob("GPA > 2")
        assert model.cache.total_entries() <= 10

    def test_noop_with_disabled_cache(self):
        model = SpplModel(indian_gpa.model().spe, cache=False)
        with model.query_scope() as scoped:
            assert scoped is model
            assert model.logprob("GPA > 3") == indian_gpa.model().logprob("GPA > 3")

    def test_yields_model_for_with_as(self):
        model = small_model(50)
        with model.query_scope() as scoped:
            assert scoped is model

    def test_concurrent_scopes_from_threads(self):
        cache = QueryCache(max_entries=40)
        model = SpplModel(indian_gpa.model().spe, cache=cache)
        errors = []

        def worker(offset):
            try:
                with model.query_scope():
                    for i in range(50):
                        model.logprob("GPA > %r" % (0.01 * (offset + i)))
            except Exception as error:  # pragma: no cover
                errors.append(error)

        threads = [threading.Thread(target=worker, args=(100 * t,)) for t in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert model.cache.total_entries() <= 40
