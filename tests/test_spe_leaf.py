"""Unit tests for Leaf nodes: scope, environments, inference, sampling."""

import math

import numpy as np
import pytest

from repro.distributions import atomic
from repro.distributions import bernoulli
from repro.distributions import choice
from repro.distributions import normal
from repro.distributions import poisson
from repro.distributions import uniform
from repro.spe import Leaf
from repro.spe import Memo
from repro.spe import SumSPE
from repro.transforms import Id

X = Id("X")
Z = Id("Z")
RNG = np.random.default_rng(0)


class TestLeafConstruction:
    def test_scope_single_variable(self):
        leaf = Leaf("X", normal(0, 1))
        assert leaf.scope == frozenset(["X"])

    def test_scope_with_derived_variables(self):
        leaf = Leaf("X", normal(0, 1), env={"Z": X ** 2})
        assert leaf.scope == frozenset(["X", "Z"])

    def test_env_may_not_contain_base_variable(self):
        with pytest.raises(ValueError):
            Leaf("X", normal(0, 1), env={"X": X})

    def test_env_must_reference_defined_variables(self):
        with pytest.raises(ValueError):
            Leaf("X", normal(0, 1), env={"Z": Id("Y") + 1})

    def test_chained_env_resolution(self):
        leaf = Leaf("X", normal(0, 1), env={"Z": X + 1, "W": Z * 2})
        resolved = leaf.resolved_transform("W")
        assert resolved.get_symbols() == frozenset(["X"])
        assert resolved.evaluate(3.0) == pytest.approx(8.0)

    def test_requires_distribution(self):
        with pytest.raises(TypeError):
            Leaf("X", 5)


class TestLeafInference:
    def test_logprob_of_event(self):
        leaf = Leaf("X", uniform(0, 10))
        assert leaf.prob(X <= 5) == pytest.approx(0.5)

    def test_logprob_event_on_derived_variable(self):
        leaf = Leaf("X", uniform(0, 10), env={"Z": 2 * X})
        assert leaf.prob(Z <= 10) == pytest.approx(0.5)

    def test_logprob_conjunction_base_and_derived(self):
        leaf = Leaf("X", uniform(0, 10), env={"Z": 2 * X})
        assert leaf.prob((Z <= 10) & (X >= 2.5)) == pytest.approx(0.25)

    def test_logprob_unrelated_clause_is_one(self):
        leaf = Leaf("X", uniform(0, 10))
        assert leaf.logprob_clause({}, Memo()) == 0.0

    def test_condition_to_truncated_leaf(self):
        leaf = Leaf("X", uniform(0, 10))
        conditioned = leaf.condition(X <= 5)
        assert isinstance(conditioned, Leaf)
        assert conditioned.prob(X <= 2.5) == pytest.approx(0.5)

    def test_condition_on_union_builds_mixture(self):
        leaf = Leaf("X", uniform(0, 10))
        conditioned = leaf.condition((X < 2) | (X > 8))
        assert isinstance(conditioned, SumSPE)
        assert conditioned.prob(X < 2) == pytest.approx(0.5)

    def test_condition_zero_probability_raises(self):
        leaf = Leaf("X", uniform(0, 10))
        with pytest.raises(ValueError):
            leaf.condition(X > 20)

    def test_condition_event_out_of_scope_raises(self):
        leaf = Leaf("X", uniform(0, 10))
        with pytest.raises(ValueError):
            leaf.condition(Id("Q") > 0)

    def test_transformed_event_through_env(self):
        leaf = Leaf("X", normal(0, 2), env={"Z": X ** 2})
        assert leaf.prob(Z <= 4) == pytest.approx(leaf.prob((X >= -2) & (X <= 2)))

    def test_nominal_leaf(self):
        leaf = Leaf("N", choice({"a": 0.2, "b": 0.8}))
        assert leaf.prob(Id("N") == "b") == pytest.approx(0.8)
        conditioned = leaf.condition(Id("N") == "b")
        assert conditioned.prob(Id("N") == "a") == 0.0

    def test_discrete_leaf(self):
        leaf = Leaf("K", poisson(3))
        conditioned = leaf.condition(Id("K") << {1, 2})
        total = conditioned.prob(Id("K") == 1) + conditioned.prob(Id("K") == 2)
        assert total == pytest.approx(1.0)


class TestLeafDensityAndConstrain:
    def test_logpdf_continuous(self):
        leaf = Leaf("X", normal(0, 1))
        assert leaf.logpdf({"X": 0.0}) == pytest.approx(-0.5 * math.log(2 * math.pi))

    def test_logpdf_discrete(self):
        leaf = Leaf("K", bernoulli(0.3))
        assert math.exp(leaf.logpdf({"K": 1})) == pytest.approx(0.3)

    def test_logpdf_pair_counts_continuous_dimensions(self):
        assert Leaf("X", normal(0, 1)).logpdf_pair({"X": 0.0}, Memo())[0] == 1
        assert Leaf("K", bernoulli(0.3)).logpdf_pair({"K": 1}, Memo())[0] == 0

    def test_logpdf_on_derived_variable_rejected(self):
        leaf = Leaf("X", normal(0, 1), env={"Z": X ** 2})
        with pytest.raises(ValueError):
            leaf.logpdf({"Z": 1.0})

    def test_constrain_continuous(self):
        leaf = Leaf("X", normal(0, 1), env={"Z": X + 1})
        constrained = leaf.constrain({"X": 0.5})
        assert constrained.prob(X == 0.5) == pytest.approx(1.0)
        assert constrained.prob(Z == 1.5) == pytest.approx(1.0)

    def test_constrain_zero_density_raises(self):
        leaf = Leaf("X", uniform(0, 1))
        with pytest.raises(ValueError):
            leaf.constrain({"X": 2.0})

    def test_constrain_discrete(self):
        leaf = Leaf("K", poisson(4))
        constrained = leaf.constrain({"K": 2})
        assert constrained.prob(Id("K") == 2) == pytest.approx(1.0)


class TestLeafDerivedAndSampling:
    def test_transform_adds_derived_variable(self):
        leaf = Leaf("X", normal(0, 1)).transform("Z", X ** 2 + 1)
        assert "Z" in leaf.scope
        assert leaf.prob(Z >= 1) == pytest.approx(1.0)

    def test_transform_duplicate_name_rejected(self):
        leaf = Leaf("X", normal(0, 1))
        with pytest.raises(ValueError):
            leaf.transform("X", X + 1)

    def test_transform_unknown_variable_rejected(self):
        leaf = Leaf("X", normal(0, 1))
        with pytest.raises(ValueError):
            leaf.transform("Z", Id("Y") + 1)

    def test_sampling_includes_derived_values(self):
        leaf = Leaf("X", uniform(0, 1), env={"Z": 2 * X + 1})
        sample = leaf.sample(RNG)
        assert set(sample) == {"X", "Z"}
        assert sample["Z"] == pytest.approx(2 * sample["X"] + 1)

    def test_sampling_atomic(self):
        leaf = Leaf("A", atomic(7))
        assert leaf.sample(RNG)["A"] == 7.0

    def test_sample_subset(self):
        leaf = Leaf("X", uniform(0, 1), env={"Z": 2 * X})
        subset = leaf.sample_subset(["Z"], RNG)
        assert set(subset) == {"Z"}

    def test_size(self):
        assert Leaf("X", normal(0, 1)).size() == 1
        assert Leaf("X", normal(0, 1)).tree_size() == 1
