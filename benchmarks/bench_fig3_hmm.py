"""Figure 3 / Sec. 2.2: exact smoothing in the hierarchical HMM.

Regenerates the smoothing series of Fig. 3b (the posterior marginals
P(Z_t = 1 | x, y)) for a simulated dataset, validates them against the
forward-backward oracle, and measures (i) the linear growth of the
expression size with the number of time steps (the point of Fig. 3d) and
(ii) the cost of translation, conditioning and querying.
"""

import pytest

from repro.baselines import hmm_smoothing_forward_backward
from repro.transforms import Id
from repro.workloads import hmm

from .conftest import bench_scale
from .conftest import write_results


def _n_step() -> int:
    return max(10, int(round(100 * bench_scale())))


def test_fig3_translation_scaling(benchmark):
    n_step = _n_step()
    model = benchmark.pedantic(lambda: hmm.model(n_step), iterations=1, rounds=1)
    sizes = {n: hmm.model(n).size() for n in (5, 10, 20)}
    # Linear growth: the increment from 10->20 steps is at most ~2x the
    # increment from 5->10 steps (it would square for an exponential build).
    assert (sizes[20] - sizes[10]) <= 3 * (sizes[10] - sizes[5])
    assert model.size() > sizes[20] or n_step <= 20


def test_fig3_smoothing(benchmark):
    n_step = _n_step()
    data = hmm.simulate_data(n_step, seed=0)
    model = hmm.model(n_step)

    posteriors = benchmark.pedantic(
        lambda: hmm.smooth(model, data["x"], data["y"]), iterations=1, rounds=1
    )

    oracle = hmm_smoothing_forward_backward(data["x"], data["y"])["smoothed"]
    for sppl_value, oracle_value in zip(posteriors, oracle):
        assert sppl_value == pytest.approx(oracle_value, abs=1e-6)

    lines = ["t | true Z | observed X | observed Y | P(Z=1 | data)"]
    for t, (z, x, y, p) in enumerate(
        zip(data["z"], data["x"], data["y"], posteriors)
    ):
        lines.append("%d | %d | %.2f | %d | %.4f" % (t, z, x, y, p))
    write_results("fig3_hmm_smoothing", lines)


def test_fig3_posterior_reuse(benchmark):
    """Conditioning once and issuing many queries (the multi-stage payoff)."""
    n_step = max(10, _n_step() // 2)
    data = hmm.simulate_data(n_step, seed=1)
    model = hmm.model(n_step)
    posterior = model.constrain(hmm.observation_assignment(data["x"], data["y"]))

    def query_all():
        return [posterior.prob(Id(hmm.z(t)) == 1) for t in range(n_step)]

    posteriors = benchmark(query_all)
    assert all(0.0 <= p <= 1.0 for p in posteriors)
