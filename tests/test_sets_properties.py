"""Property-based tests for the Outcomes set algebra (hypothesis)."""

import math

from hypothesis import given
from hypothesis import settings
from hypothesis import strategies as st

from repro.sets import EMPTY_SET
from repro.sets import FiniteNominal
from repro.sets import FiniteReal
from repro.sets import complement
from repro.sets import intersection
from repro.sets import interval
from repro.sets import union

_FINITE_FLOATS = st.floats(
    min_value=-100, max_value=100, allow_nan=False, allow_infinity=False
)

_TEST_POINTS = [-50.0, -3.5, -1.0, 0.0, 0.25, 1.0, 2.0, 7.5, 49.9, 80.0]
_TEST_STRINGS = ["a", "b", "c", "zzz"]


@st.composite
def intervals(draw):
    a = draw(_FINITE_FLOATS)
    b = draw(_FINITE_FLOATS)
    lo, hi = min(a, b), max(a, b)
    left_open = draw(st.booleans())
    right_open = draw(st.booleans())
    return interval(lo, hi, left_open, right_open)


@st.composite
def finite_reals(draw):
    values = draw(st.lists(_FINITE_FLOATS, min_size=1, max_size=4))
    return FiniteReal(values)


@st.composite
def nominals(draw):
    values = draw(st.lists(st.sampled_from(_TEST_STRINGS), min_size=1, max_size=3))
    positive = draw(st.booleans())
    return FiniteNominal(values, positive=positive)


@st.composite
def outcome_sets(draw):
    pieces = draw(
        st.lists(
            st.one_of(intervals(), finite_reals(), nominals()), min_size=1, max_size=3
        )
    )
    return union(*pieces)


def _membership(s, point) -> bool:
    return s.contains(point)


class TestSetAlgebraProperties:
    @settings(max_examples=200, deadline=None)
    @given(outcome_sets(), outcome_sets())
    def test_union_membership(self, a, b):
        combined = union(a, b)
        for point in _TEST_POINTS + _TEST_STRINGS:
            assert combined.contains(point) == (a.contains(point) or b.contains(point))

    @settings(max_examples=200, deadline=None)
    @given(outcome_sets(), outcome_sets())
    def test_intersection_membership(self, a, b):
        combined = intersection(a, b)
        for point in _TEST_POINTS + _TEST_STRINGS:
            assert combined.contains(point) == (a.contains(point) and b.contains(point))

    @settings(max_examples=200, deadline=None)
    @given(outcome_sets())
    def test_complement_membership_within_both_universes(self, a):
        comp = complement(a, universe="both")
        for point in _TEST_POINTS + _TEST_STRINGS:
            assert comp.contains(point) == (not a.contains(point))

    @settings(max_examples=100, deadline=None)
    @given(outcome_sets())
    def test_double_complement(self, a):
        twice = complement(complement(a, universe="both"), universe="both")
        for point in _TEST_POINTS + _TEST_STRINGS:
            assert twice.contains(point) == a.contains(point)

    @settings(max_examples=100, deadline=None)
    @given(outcome_sets(), outcome_sets())
    def test_de_morgan(self, a, b):
        lhs = complement(union(a, b), universe="both")
        rhs = intersection(
            complement(a, universe="both"), complement(b, universe="both")
        )
        for point in _TEST_POINTS + _TEST_STRINGS:
            assert lhs.contains(point) == rhs.contains(point)

    @settings(max_examples=100, deadline=None)
    @given(outcome_sets())
    def test_union_idempotent(self, a):
        same = union(a, a)
        for point in _TEST_POINTS + _TEST_STRINGS:
            assert same.contains(point) == a.contains(point)

    @settings(max_examples=100, deadline=None)
    @given(outcome_sets())
    def test_intersection_with_complement_empty(self, a):
        nothing = intersection(a, complement(a, universe="both"))
        for point in _TEST_POINTS + _TEST_STRINGS:
            assert not nothing.contains(point)

    @settings(max_examples=100, deadline=None)
    @given(intervals(), intervals(), intervals())
    def test_union_associative_membership(self, a, b, c):
        left = union(union(a, b), c)
        right = union(a, union(b, c))
        for point in _TEST_POINTS:
            assert left.contains(point) == right.contains(point)

    @settings(max_examples=100, deadline=None)
    @given(intervals())
    def test_interval_empty_detection(self, a):
        if a is EMPTY_SET:
            assert not any(a.contains(p) for p in _TEST_POINTS)
