"""Product nodes: tuples of independent sum-product expressions."""

from __future__ import annotations

from typing import FrozenSet
from typing import List
from typing import Optional
from typing import Sequence

from ..events import Clause
from ..transforms import Transform
from .base import SPE
from .interning import maybe_intern


class ProductSPE(SPE):
    """A product of sum-product expressions with pairwise-disjoint scopes."""

    def __init__(self, children: Sequence[SPE]):
        super().__init__()
        children = list(children)
        if len(children) < 2:
            raise ValueError("ProductSPE requires at least two children; use spe_product().")
        scope: FrozenSet[str] = frozenset()
        for child in children:
            overlap = scope & child.scope
            if overlap:
                raise ValueError(
                    "Children of a ProductSPE must have disjoint scopes "
                    "(condition C3); %s appear twice." % (sorted(overlap),)
                )
            scope |= child.scope
        self.children = tuple(children)
        self._scope = scope

    # -- Structure -----------------------------------------------------------

    @property
    def scope(self) -> FrozenSet[str]:
        return self._scope

    def children_nodes(self) -> List[SPE]:
        return list(self.children)

    def _intern_local_key(self, child_reps) -> Optional[tuple]:
        # Products of independent components are commutative: sorting the
        # child uids makes the key order-insensitive.
        return ("product", tuple(sorted(rep._uid for rep in child_reps)))

    def _intern_rebuild(self, child_reps) -> SPE:
        return ProductSPE(child_reps)

    def __repr__(self) -> str:
        return "ProductSPE(%s)" % (list(self.children),)

    def _restrict(self, clause: Clause) -> Clause:
        return {s: v for s, v in clause.items() if s in self._scope}

    # -- Derived variables ----------------------------------------------------

    def transform(self, symbol: str, expression: Transform) -> SPE:
        from .traversal import transform_spe

        return transform_spe(self, symbol, expression)


def spe_product(children: Sequence[SPE]) -> SPE:
    """Canonicalizing constructor for products.

    Splices nested products, collapses singleton products, and interns the
    result against the global unique table so structurally-equal products
    become physically shared.
    """
    flat: List[SPE] = []
    for child in children:
        if isinstance(child, ProductSPE):
            flat.extend(child.children)
        else:
            flat.append(child)
    if not flat:
        raise ValueError("spe_product requires at least one child.")
    if len(flat) == 1:
        return flat[0]
    return maybe_intern(ProductSPE(flat))
