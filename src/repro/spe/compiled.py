"""Compiled zero-copy columnar kernel for sum-product expressions.

The interpreter of :mod:`~repro.spe.traversal` pays one Python dispatch
per node per query; on the serve hot path that dispatch — not the math —
dominates.  This module lowers an (interned) expression graph into a set
of contiguous numpy arrays:

* ``node_kind`` / ``node_level``   — one row per unique node, listed in
  the deterministic children-first order of
  :func:`~repro.spe.serialize.spe_to_dict` (the root is the last row);
* ``child_offsets`` / ``child_indices`` — a CSR table of the child edges
  of sum and product rows, preserving child order;
* ``child_log_weights``            — the mixture weight of every sum
  edge (0 for product edges), aligned with ``child_indices``;
* packed leaf-parameter tables (``leaf_family``, ``leaf_lo``/``leaf_hi``,
  ``leaf_log_mass``, ``leaf_atom``, ``leaf_is_continuous``) grouped by
  distribution family so density kernels vectorize per family.

On top of the arrays, :class:`CompiledSPE` precomputes a *level
schedule*: rows are assigned ``level = 1 + max(child levels)`` (leaves
are level 0) and grouped by ``(level, kind, arity)``, so a whole batch
of queries is answered with one vectorized sweep per group — one
log-sum-exp per sum group, one masked add-reduce per product group —
instead of one Python call per node per query.

**Bit identity.**  The sweeps replicate the interpreter's arithmetic
exactly: the same first-maximal peak scan and the same left-to-right
accumulation order as :func:`~repro.distributions.base.log_add` (which
routes through the same numpy ``exp``/``log`` kernels), sequential
child-order adds for products (numpy's pairwise ``np.sum`` is *not*
used), and per-family leaf kernels that mirror each distribution's
scalar ``logpdf`` decision tree.  Compiled answers are therefore
bit-identical to the object-graph path; the bench gate enforces this
differentially.

**Blob format.**  A compiled model serializes to a single ``.spz`` file:
a JSON header, the canonical digest-preimage payload of
:func:`~repro.spe.serialize.spe_digest`, and the arrays, each section
64-byte aligned.  The file is deterministic — built from and stamped
with ``spe_digest`` — and is loaded with ``mmap`` read-only, binding the
arrays zero-copy via ``np.frombuffer``; any number of worker processes
mapping the same file share one physical copy of the pages.

**Fallback.**  The engine (:class:`~repro.engine.model.SpplModel`)
routes batched queries through a compiled handle transparently and falls
back to the interpreter whenever a query shape is unsupported (density
queries on derived variables, ragged key sets, or an explicit caller
memo).
"""

from __future__ import annotations

import hashlib
import json
import math
import mmap
import os
import struct
from typing import Dict
from typing import List
from typing import Optional
from typing import Sequence

import numpy as np

from .. import obs
from ..distributions import NEG_INF
from ..distributions import log_add
from ..distributions import safe_log
from ..distributions import AtomicDistribution
from ..distributions import DiscreteDistribution
from ..distributions import DiscreteFinite
from ..distributions import NominalDistribution
from ..distributions import RealDistribution
from ..distributions.discrete import _integer_bounds
from ..sets import FiniteReal
from ..sets import Interval
from ..sets import components
from ..sets import intersection
from ..events import Event
from ..events import event_to_disjoint_clauses
from .base import SPE
from .interning import maybe_intern
from .leaf import Leaf
from .product_node import ProductSPE
from .serialize import spe_digest
from .serialize import spe_from_dict
from .serialize import spe_to_dict
from .sum_node import SumSPE

__all__ = [
    "CompiledSPE",
    "SpzError",
    "compile_spe",
    "load_spz",
    "read_spz_payload",
]

#: Node kinds in the ``node_kind`` table.
KIND_LEAF, KIND_SUM, KIND_PRODUCT = 0, 1, 2

#: Leaf distribution families in the ``leaf_family`` table.  ``OTHER``
#: covers exotic / finite / nominal families whose density kernel runs
#: the per-row scalar ``logpdf`` (always correct, never vectorized).
FAMILY_REAL, FAMILY_ATOMIC, FAMILY_DISCRETE, FAMILY_OTHER = 0, 1, 2, 3

_MAGIC = b"REPROSPZ"
_VERSION = 1
_ALIGN = 64
#: The fixed prelude: magic, header-region size, header length.
_PRELUDE = struct.Struct("<8sQQ")

#: Fixed serialization order of the array sections.
_ARRAY_NAMES = (
    "node_kind",
    "node_level",
    "child_offsets",
    "child_indices",
    "child_log_weights",
    "leaf_family",
    "leaf_is_continuous",
    "leaf_lo",
    "leaf_hi",
    "leaf_log_mass",
    "leaf_atom",
)


class SpzError(ValueError):
    """Raised when a ``.spz`` blob is malformed, truncated, or fails its
    digest verification."""


# ---------------------------------------------------------------------------
# Lowering: graph -> arrays.
# ---------------------------------------------------------------------------

def _index_nodes(root: SPE) -> List[SPE]:
    """Unique nodes in the children-first order of ``spe_to_dict``.

    Mirrors the encoder's traversal exactly, so row ``i`` of the node
    table is the node the payload names ``order[i]`` and the root is the
    last row.  This is what lets a loader re-bind blob rows to the graph
    it rebuilt from the payload section.
    """
    nodes: List[SPE] = []
    seen = set()
    stack: List[SPE] = [root]
    while stack:
        node = stack[-1]
        if node._uid in seen:
            stack.pop()
            continue
        pending = [c for c in node.children_nodes() if c._uid not in seen]
        if pending:
            stack.extend(pending)
            continue
        seen.add(node._uid)
        nodes.append(node)
        stack.pop()
    return nodes


def _leaf_family(dist) -> int:
    if isinstance(dist, RealDistribution):
        return FAMILY_REAL
    if isinstance(dist, AtomicDistribution):
        return FAMILY_ATOMIC
    if isinstance(dist, DiscreteDistribution):
        return FAMILY_DISCRETE
    return FAMILY_OTHER


def _build_arrays(nodes: Sequence[SPE]) -> Dict[str, np.ndarray]:
    """Lower the node list into the contiguous table set."""
    n = len(nodes)
    index = {node._uid: i for i, node in enumerate(nodes)}
    kind = np.zeros(n, dtype=np.uint8)
    level = np.zeros(n, dtype=np.int32)
    offsets = np.zeros(n + 1, dtype=np.int64)
    children: List[int] = []
    weights: List[float] = []
    family = np.full(n, FAMILY_OTHER, dtype=np.uint8)
    continuous = np.zeros(n, dtype=np.uint8)
    lo = np.full(n, np.nan)
    hi = np.full(n, np.nan)
    log_mass = np.zeros(n)
    atom = np.full(n, np.nan)
    for i, node in enumerate(nodes):
        if isinstance(node, Leaf):
            kind[i] = KIND_LEAF
            dist = node.dist
            family[i] = _leaf_family(dist)
            continuous[i] = 1 if dist.is_continuous else 0
            if isinstance(dist, (RealDistribution, DiscreteDistribution)):
                lo[i] = dist.lo
                hi[i] = dist.hi
                log_mass[i] = dist._log_mass
            elif isinstance(dist, AtomicDistribution):
                atom[i] = dist.value
        else:
            if isinstance(node, SumSPE):
                kind[i] = KIND_SUM
                weights.extend(node.log_weights)
            else:
                kind[i] = KIND_PRODUCT
                weights.extend(0.0 for _ in node.children)
            rows = [index[c._uid] for c in node.children]
            children.extend(rows)
            level[i] = 1 + max(level[r] for r in rows)
        offsets[i + 1] = len(children)
    return {
        "node_kind": kind,
        "node_level": level,
        "child_offsets": offsets,
        "child_indices": np.asarray(children, dtype=np.int32),
        "child_log_weights": np.asarray(weights, dtype=np.float64),
        "leaf_family": family,
        "leaf_is_continuous": continuous,
        "leaf_lo": lo,
        "leaf_hi": hi,
        "leaf_log_mass": log_mass,
        "leaf_atom": atom,
    }


def compile_spe(spe: SPE) -> "CompiledSPE":
    """Lower an expression into a :class:`CompiledSPE` (in memory).

    The expression is resolved against the interning table first, so the
    node table matches the canonical serialized form; the result is
    stamped with ``spe_digest``.  Raises
    :class:`~repro.spe.serialize.SerializationError` for graphs without
    a canonical serialized form (exotic distributions).
    """
    root = maybe_intern(spe)
    data = spe_to_dict(root)
    payload = json.dumps(data, sort_keys=True, separators=(",", ":")).encode("utf-8")
    digest = hashlib.sha256(payload).hexdigest()
    nodes = _index_nodes(root)
    order = data["order"]
    if len(nodes) != len(order):
        raise SpzError(
            "Compiler order disagrees with the serialized order "
            "(%d nodes vs %d)." % (len(nodes), len(order))
        )
    arrays = _build_arrays(nodes)
    return CompiledSPE(root, nodes, arrays, payload, digest)


# ---------------------------------------------------------------------------
# The compiled engine.
# ---------------------------------------------------------------------------

class CompiledSPE:
    """Columnar batch-inference engine over the lowered arrays.

    Instances are produced by :func:`compile_spe` (arrays owned in
    memory) or :func:`load_spz` (arrays bound zero-copy into a read-only
    ``mmap``).  ``root`` is the live expression graph the arrays were
    lowered from — leaf rows keep a bound reference to their ``Leaf``
    for the scalar kernels (clause solving, scipy calls) that cannot be
    expressed as pure array math.
    """

    def __init__(self, root, nodes, arrays, payload, digest,
                 source_path=None, mapping=None):
        self.root = root
        self.digest = digest
        self.source_path = source_path
        self._payload = payload
        self._mmap = mapping
        self._arrays = arrays
        self._nodes = list(nodes)
        self._closed = False
        n = len(self._nodes)
        self._n_nodes = n
        self._n_edges = int(arrays["child_offsets"][n])
        self._root_row = n - 1
        # Leaf row maps: full scope (logprob touch propagation) and base
        # symbol only (density queries), plus the set of derived symbols
        # that force the density fast path to fall back.
        self._rows_by_scope: Dict[str, List[int]] = {}
        self._rows_by_symbol: Dict[str, List[int]] = {}
        self._derived: set = set()
        for i, node in enumerate(self._nodes):
            if isinstance(node, Leaf):
                for symbol in node.scope:
                    self._rows_by_scope.setdefault(symbol, []).append(i)
                self._rows_by_symbol.setdefault(node.symbol, []).append(i)
                self._derived.update(node.env)
        self._schedule = self._build_schedule(arrays)
        self._max_level = int(arrays["node_level"].max()) if n else 0
        # Parents-first order for the routed bulk sampler (computing it
        # is a full graph walk; caching it here is the compiled speedup).
        from .traversal import _topological_order

        self._order = _topological_order(root)

    @staticmethod
    def _build_schedule(arrays):
        """Group interior rows into per-(level, kind, arity) sweeps.

        Each group carries its row vector, an ``(rows, arity)`` child
        matrix, and (for sums) the matching weight matrix.  The matrices
        are small gathered copies of the CSR tables; the big sections
        (payload, CSR, leaf tables) stay in the blob.
        """
        kind = arrays["node_kind"]
        level = arrays["node_level"]
        offsets = arrays["child_offsets"]
        child = arrays["child_indices"]
        weights = arrays["child_log_weights"]
        groups: Dict[tuple, List[int]] = {}
        for i in np.nonzero(kind != KIND_LEAF)[0]:
            arity = int(offsets[i + 1] - offsets[i])
            groups.setdefault((int(level[i]), int(kind[i]), arity), []).append(int(i))
        schedule: Dict[int, List[dict]] = {}
        for (lvl, knd, arity), rows in sorted(groups.items()):
            starts = offsets[rows]
            gather = starts[:, None] + np.arange(arity)[None, :]
            entry = {
                "kind": knd,
                "rows": np.asarray(rows, dtype=np.int64),
                "children": child[gather].astype(np.int64),
                "weights": weights[gather] if knd == KIND_SUM else None,
            }
            schedule.setdefault(lvl, []).append(entry)
        return schedule

    # -- Introspection -------------------------------------------------------

    def describe(self) -> Dict[str, object]:
        """Summary of the compiled representation (for stats endpoints)."""
        return {
            "digest": self.digest,
            "nodes": self._n_nodes,
            "edges": self._n_edges,
            "levels": self._max_level,
            "mmap": self._mmap is not None,
            "path": self.source_path,
        }

    @property
    def closed(self) -> bool:
        return self._closed

    # -- Lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Release the blob mapping (if any).  The handle is unusable after."""
        if self._closed:
            return
        self._closed = True
        # Drop every array that may view the mapping before closing it;
        # mmap.close() raises BufferError while exported views exist.
        self._arrays = None
        self._schedule = None
        if self._mmap is not None:
            mapping, self._mmap = self._mmap, None
            try:
                mapping.close()
            except BufferError:  # pragma: no cover - a caller kept a view
                pass

    def __del__(self):  # pragma: no cover - GC safety net
        try:
            self.close()
        except Exception:
            pass

    def _require_open(self):
        if self._closed:
            raise SpzError("CompiledSPE handle is closed.")

    # -- Probability of events ----------------------------------------------

    def logprob_batch(self, events: Sequence[Event]) -> List[float]:
        """Exact log probabilities of resolved events, vectorized.

        Scope checking, DNF clause splitting, and the final per-event
        log-sum-exp follow the interpreter exactly; the per-clause graph
        evaluation runs as columnar level sweeps.
        """
        self._require_open()
        clauses: List[dict] = []
        spans: List[tuple] = []
        for event in events:
            self.root._check_event_scope(event)
            event_clauses = event_to_disjoint_clauses(event)
            spans.append((len(clauses), len(clauses) + len(event_clauses)))
            clauses.extend(event_clauses)
        with obs.span("kernel.sweep", events=len(events), clauses=len(clauses),
                      nodes=self._n_nodes):
            values = self._eval_clause_columns(clauses)
        return [
            float(log_add([values[j] for j in range(lo, hi)]))
            for lo, hi in spans
        ]

    def _eval_clause_columns(self, clauses: List[dict]) -> List[float]:
        """Root log probability of each solved clause (one column each)."""
        n, cols = self._n_nodes, len(clauses)
        if cols == 0:
            return []
        values = np.zeros((n, cols))
        touched = np.zeros((n, cols), dtype=bool)
        self._eval_leaf_columns(clauses, values, touched)
        with np.errstate(over="ignore", invalid="ignore", divide="ignore"):
            for lvl in range(1, self._max_level + 1):
                for group in self._schedule.get(lvl, ()):
                    rows, child = group["rows"], group["children"]
                    if group["kind"] == KIND_SUM:
                        self._sweep_sum_logprob(values, touched, group)
                    else:
                        acc = np.zeros((len(rows), cols))
                        hit = touched[child[:, 0]].copy()
                        for k in range(child.shape[1]):
                            rows_k = child[:, k]
                            t_k = touched[rows_k]
                            # np.where keeps the running value bit-exact
                            # where the child is unmentioned (the
                            # interpreter skips it entirely).
                            acc = np.where(t_k, acc + values[rows_k], acc)
                            if k:
                                hit |= t_k
                        values[rows] = acc
                        touched[rows] = hit
        root = values[self._root_row]
        return root.tolist()

    def _eval_leaf_columns(self, clauses, values, touched) -> None:
        """Fill the leaf rows of the clause-column matrices.

        Clause solving stays scalar (it is set arithmetic, not array
        math), but every scipy tail/cdf/pmf probability it requests is
        collected into per-row batches and dispatched as one vectorized
        call per row.  numpy/scipy scalar and array kernels agree
        bit-for-bit, and the surrounding arithmetic replicates the
        scalar ``RealDistribution.logprob`` / ``DiscreteDistribution.
        logprob`` decision trees exactly, so batching preserves
        bit-identity with the interpreter.  Identical (row, restriction)
        pairs resolve once and share the result, the same way the
        interpreter's memo shares them.
        """
        from .base import clause_key

        jobs: List[tuple] = []
        job_cols: List[List[int]] = []
        job_of: Dict[tuple, int] = {}
        real_reqs: Dict[int, List[float]] = {}
        cdf_reqs: Dict[int, List[float]] = {}
        pmf_reqs: Dict[int, List[float]] = {}
        for j, clause in enumerate(clauses):
            rows = set()
            for symbol in clause:
                rows.update(self._rows_by_scope.get(symbol, ()))
            for r in rows:
                leaf = self._nodes[r]
                restricted = leaf._restrict(clause)
                key = (r, clause_key(restricted))
                idx = job_of.get(key)
                if idx is None:
                    idx = len(jobs)
                    job_of[key] = idx
                    jobs.append(self._leaf_logprob_job(
                        r, leaf, restricted, real_reqs, cdf_reqs, pmf_reqs))
                    job_cols.append([])
                job_cols[idx].append(j)
                touched[r, j] = True
        real_vals = self._real_interval_probs(real_reqs)
        cdf_vals = {
            r: np.asarray(
                self._nodes[r].dist.dist.cdf(np.asarray(ks, dtype=float)),
                dtype=float,
            )
            for r, ks in cdf_reqs.items()
        }
        pmf_vals = {
            r: np.asarray(
                self._nodes[r].dist.dist.pmf(np.asarray(ks, dtype=float)),
                dtype=float,
            )
            for r, ks in pmf_reqs.items()
        }
        for idx, (r, tag, payload) in enumerate(jobs):
            if tag == "done":
                value = payload
            else:
                terms: List[float] = []
                for desc in payload:
                    op = desc[0]
                    if op == "real":
                        p = float(real_vals[r][desc[1]])
                    elif op == "p":
                        p = desc[1]
                    elif op == "range":
                        diff = (self._cdf_val(r, desc[1], cdf_vals)
                                - self._cdf_val(r, desc[2], cdf_vals))
                        # max(diff, 0.0): replace only on strict greater,
                        # so NaN and -0.0 pass through unchanged.
                        p = 0.0 if 0.0 > diff else diff
                    else:  # "pmf"
                        p = float(pmf_vals[r][desc[1]])
                    terms.append(safe_log(p))
                value = (log_add(terms) - self._nodes[r].dist._log_mass
                         if terms else NEG_INF)
            values[r, job_cols[idx]] = value

    def _leaf_logprob_job(self, r, leaf, restricted,
                          real_reqs, cdf_reqs, pmf_reqs) -> tuple:
        """Plan one (leaf row, restriction) evaluation.

        Returns ``(row, "done", value)`` when the result needs no scipy
        call, or ``(row, "terms", descriptors)`` where each descriptor
        names a probability term to be resolved from the batched scipy
        results.  Only exact ``RealDistribution`` / ``DiscreteDistribution``
        leaves are planned; subclasses and other families run their own
        scalar ``logprob`` unchanged.
        """
        solved = leaf._solve_clause_set(restricted)
        if solved is None:
            return (r, "done", 0.0)
        dist = leaf.dist
        if type(dist) is RealDistribution:
            descs: List[tuple] = []
            support = dist.support()
            for piece in components(solved):
                if isinstance(piece, Interval):
                    clipped = intersection(piece, support)
                    for part in components(clipped):
                        if isinstance(part, Interval):
                            if part.right <= part.left:
                                descs.append(("p", 0.0))
                            else:
                                reqs = real_reqs.setdefault(r, [])
                                descs.append(("real", len(reqs) // 2))
                                reqs.append(part.left)
                                reqs.append(part.right)
                # Finite real / nominal pieces have probability zero and
                # contribute no term, exactly as the scalar logprob.
            return (r, "terms", descs)
        if type(dist) is DiscreteDistribution:
            descs = []
            for piece in components(solved):
                if isinstance(piece, Interval):
                    lo, hi = _integer_bounds(piece)
                    lo = max(lo, dist.lo)
                    hi = min(hi, dist.hi)
                    if hi < lo:
                        descs.append(("p", 0.0))
                        continue
                    upper = self._cdf_ref(r, hi, cdf_reqs)
                    lower = (("c", 0.0) if math.isinf(lo)
                             else self._cdf_ref(r, lo - 1, cdf_reqs))
                    descs.append(("range", upper, lower))
                elif isinstance(piece, FiniteReal):
                    for v in piece.values:
                        if (not float(v).is_integer()
                                or not (dist.lo <= v <= dist.hi)):
                            descs.append(("p", 0.0))
                        else:
                            reqs = pmf_reqs.setdefault(r, [])
                            descs.append(("pmf", len(reqs)))
                            reqs.append(float(v))
            return (r, "terms", descs)
        return (r, "done", dist.logprob(solved))

    @staticmethod
    def _cdf_ref(r, k, cdf_reqs) -> tuple:
        """Reference to ``_raw_cdf(k)``: the ±inf shortcuts resolve now,
        finite points join the row's batched cdf request."""
        if k == math.inf:
            return ("c", 1.0)
        if k == -math.inf:
            return ("c", 0.0)
        reqs = cdf_reqs.setdefault(r, [])
        reqs.append(float(k))
        return ("cdf", len(reqs) - 1)

    @staticmethod
    def _cdf_val(r, ref, cdf_vals) -> float:
        return ref[1] if ref[0] == "c" else float(cdf_vals[r][ref[1]])

    def _real_interval_probs(self, real_reqs) -> Dict[int, np.ndarray]:
        """Resolve batched ``_interval_probability`` requests per row.

        Mirrors the scalar helper: the survival function in the upper
        tail (left at or above the median), the cdf difference below,
        then ``max(p, 0.0)`` with replace-only-on-strict-greater.
        """
        out: Dict[int, np.ndarray] = {}
        for r, flat in real_reqs.items():
            dist = self._nodes[r].dist.dist
            pairs = np.asarray(flat, dtype=float).reshape(-1, 2)
            lefts, rights = pairs[:, 0], pairs[:, 1]
            try:
                median = float(dist.median())
            except Exception:  # pragma: no cover - defensive for exotic dists
                median = 0.0
            upper = lefts >= median
            p = np.empty(len(lefts))
            if upper.any():
                p[upper] = (np.asarray(dist.sf(lefts[upper]), dtype=float)
                            - np.asarray(dist.sf(rights[upper]), dtype=float))
            lower = ~upper
            if lower.any():
                p[lower] = (np.asarray(dist.cdf(rights[lower]), dtype=float)
                            - np.asarray(dist.cdf(lefts[lower]), dtype=float))
            out[r] = np.where(0.0 > p, 0.0, p)
        return out

    @staticmethod
    def _sweep_sum_logprob(values, touched, group):
        """One vectorized log-sum-exp over a sum group.

        Replicates ``log_add([w + child for ...])``: first-maximal peak
        scan, left-to-right accumulation of the shifted exponentials,
        then the same ±inf shortcuts.
        """
        rows, child, weights = group["rows"], group["children"], group["weights"]
        terms = [weights[:, 0:1] + values[child[:, 0]]]
        peak = terms[0]
        for k in range(1, child.shape[1]):
            t_k = weights[:, k:k + 1] + values[child[:, k]]
            terms.append(t_k)
            peak = np.where(t_k > peak, t_k, peak)
        total = np.exp(terms[0] - peak)
        for t_k in terms[1:]:
            total = total + np.exp(t_k - peak)
        result = peak + np.log(total)
        result = np.where(peak == math.inf, math.inf, result)
        result = np.where(peak == NEG_INF, NEG_INF, result)
        values[rows] = result
        # Sum children share one scope (C4): touch state is the first
        # child's.
        touched[rows] = touched[child[:, 0]]

    # -- Densities of assignments --------------------------------------------

    def logpdf_batch(self, assignments: Sequence[Dict[str, object]]):
        """Log densities of point assignments, or ``None`` to fall back.

        The fast path requires one uniform key set across the batch,
        every key a non-derived variable in scope; anything else returns
        ``None`` and the caller re-runs the interpreter (which also
        raises the interpreter's own errors for invalid queries).
        """
        self._require_open()
        if not assignments:
            return []
        if not all(isinstance(a, dict) for a in assignments):
            return None
        keys = frozenset(assignments[0])
        if any(frozenset(a) != keys for a in assignments[1:]):
            return None
        if keys & self._derived:
            return None
        if not keys <= set(self.root.scope):
            return None
        n, cols = self._n_nodes, len(assignments)
        counts = np.zeros((n, cols), dtype=np.int64)
        values = np.zeros((n, cols))
        mentioned = np.zeros(n, dtype=bool)
        with np.errstate(over="ignore", invalid="ignore", divide="ignore"):
            for symbol in keys:
                for r in self._rows_by_symbol.get(symbol, ()):
                    mentioned[r] = True
                    leaf = self._nodes[r]
                    column = [a[symbol] for a in assignments]
                    log_density = self._leaf_logpdf_column(r, leaf, column)
                    values[r] = log_density
                    if leaf.dist.is_continuous:
                        counts[r] = 1
                    else:
                        counts[r] = np.where(log_density == NEG_INF, 1, 0)
            offsets = self._arrays["child_offsets"]
            child = self._arrays["child_indices"]
            kind = self._arrays["node_kind"]
            for i in range(n):
                if kind[i] != KIND_LEAF:
                    span = child[offsets[i]:offsets[i + 1]]
                    mentioned[i] = bool(mentioned[span].any())
            for lvl in range(1, self._max_level + 1):
                for group in self._schedule.get(lvl, ()):
                    if group["kind"] == KIND_SUM:
                        self._sweep_sum_logpdf(values, counts, group)
                    else:
                        self._sweep_product_logpdf(values, counts, mentioned, group)
        return [float(v) for v in values[self._root_row].tolist()]

    def _leaf_logpdf_column(self, row: int, leaf: Leaf, column: List[object]):
        """Vectorized per-family leaf density kernel (scalar fallback).

        Each branch mirrors the corresponding distribution's scalar
        ``logpdf`` decision tree on float-convertible columns; columns
        holding strings (or values ``float()`` rejects) run the scalar
        method row-by-row, which *is* the interpreter's kernel.
        """
        arrays = self._arrays
        family = int(arrays["leaf_family"][row])
        scalar = None
        if family == FAMILY_OTHER or any(isinstance(v, str) for v in column):
            scalar = True
        else:
            try:
                x = np.asarray(column, dtype=float)
            except (TypeError, ValueError):
                scalar = True
        if scalar:
            return np.asarray([leaf.dist.logpdf(v) for v in column], dtype=float)
        if family == FAMILY_ATOMIC:
            return np.where(x == arrays["leaf_atom"][row], 0.0, NEG_INF)
        lo = float(arrays["leaf_lo"][row])
        hi = float(arrays["leaf_hi"][row])
        log_mass = float(arrays["leaf_log_mass"][row])
        if family == FAMILY_REAL:
            # support() forces infinite endpoints open; NaN fails every
            # comparison, matching Interval.contains.
            left = (x > lo) if lo == -math.inf else (x >= lo)
            right = (x < hi) if hi == math.inf else (x <= hi)
            density = np.asarray(leaf.dist.dist.logpdf(x), dtype=float) - log_mass
            return np.where(left & right, density, NEG_INF)
        # FAMILY_DISCRETE: integral, finite, in-range values carry pmf
        # mass; everything else (incl. ±inf, whose floor numpy matches)
        # has raw pmf 0.0 exactly as the scalar _raw_pmf.
        valid = np.isfinite(x) & (x == np.floor(x)) & (x >= lo) & (x <= hi)
        pmf = np.asarray(leaf.dist.dist.pmf(np.where(valid, x, 0.0)), dtype=float)
        raw = np.where(valid, pmf, 0.0)
        return (
            np.asarray([safe_log(p) for p in raw.tolist()], dtype=float) - log_mass
        )

    @staticmethod
    def _sweep_sum_logpdf(values, counts, group):
        """Lexicographic mixture combine, replicating the interpreter:
        children with density > -inf survive, the minimal continuous
        count wins, and the winners' terms run through ``log_add``'s
        exact scan order."""
        rows, child, weights = group["rows"], group["children"], group["weights"]
        arity = child.shape[1]
        shape = (len(rows), values.shape[1])
        included = []
        any_included = np.zeros(shape, dtype=bool)
        min_count = np.zeros(shape, dtype=np.int64)
        for k in range(arity):
            rows_k = child[:, k]
            inc_k = values[rows_k] > NEG_INF
            included.append(inc_k)
            count_k = counts[rows_k]
            min_count = np.where(
                inc_k & (~any_included | (count_k < min_count)), count_k, min_count
            )
            any_included |= inc_k
        peak = np.zeros(shape)
        started = np.zeros(shape, dtype=bool)
        terms = []
        for k in range(arity):
            t_k = weights[:, k:k + 1] + values[child[:, k]]
            m_k = included[k] & (counts[child[:, k]] == min_count)
            terms.append((t_k, m_k))
            # First selected term initializes the peak (even NaN), later
            # ones replace it only on strict improvement — Python max().
            peak = np.where(m_k & ~started, t_k, np.where(m_k & (t_k > peak), t_k, peak))
            started |= m_k
        total = np.zeros(shape)
        for t_k, m_k in terms:
            total = np.where(m_k, total + np.exp(t_k - peak), total)
        result = peak + np.log(total)
        result = np.where(peak == math.inf, math.inf, result)
        result = np.where(peak == NEG_INF, NEG_INF, result)
        values[rows] = np.where(any_included, result, NEG_INF)
        counts[rows] = np.where(any_included, min_count, 1)

    @staticmethod
    def _sweep_product_logpdf(values, counts, mentioned, group):
        rows, child = group["rows"], group["children"]
        total = np.zeros((len(rows), values.shape[1]))
        count = np.zeros((len(rows), values.shape[1]), dtype=np.int64)
        for k in range(child.shape[1]):
            rows_k = child[:, k]
            m_k = mentioned[rows_k][:, None]
            total = np.where(m_k, total + values[rows_k], total)
            count = np.where(m_k, count + counts[rows_k], count)
        values[rows] = total
        counts[rows] = count

    # -- Sampling -------------------------------------------------------------

    def sample_columns(self, rng, n: int) -> Dict[str, np.ndarray]:
        """Routed bulk sampling over the cached parents-first order.

        Delegates to the interpreter's :func:`sample_bulk` body with the
        topological walk precomputed, so the rng call sequence — and
        therefore every drawn value — is identical.
        """
        self._require_open()
        from .traversal import sample_bulk

        return sample_bulk(self.root, rng, n, order=self._order)

    # -- Blob serialization ---------------------------------------------------

    def save(self, path) -> str:
        """Write the deterministic ``.spz`` blob to ``path`` atomically."""
        self._require_open()
        blob = _pack_blob(self._payload, self.digest, self._arrays)
        path = os.fspath(path)
        tmp = "%s.tmp.%d" % (path, os.getpid())
        with open(tmp, "wb") as handle:
            handle.write(blob)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
        return path


# ---------------------------------------------------------------------------
# The .spz container.
# ---------------------------------------------------------------------------

def _pack_blob(payload: bytes, digest: str, arrays: Dict[str, np.ndarray]) -> bytes:
    """Assemble the blob: prelude, JSON header, then 64-aligned sections."""
    sections = [("payload", payload)]
    for name in _ARRAY_NAMES:
        array = np.ascontiguousarray(arrays[name])
        sections.append((name, array.tobytes()))
    # The header encodes absolute section offsets, which depend on its
    # own size; reserve a fixed header region and grow it if needed.
    header_space = 4096
    while True:
        offset = header_space
        toc: Dict[str, Dict] = {}
        for name, data in sections:
            offset = _aligned(offset)
            if name == "payload":
                toc[name] = {"offset": offset, "length": len(data)}
            else:
                array = arrays[name]
                toc[name] = {
                    "offset": offset,
                    "dtype": str(array.dtype),
                    "shape": list(array.shape),
                }
            offset += len(data)
        header = json.dumps(
            {
                "format": "repro-spz",
                "version": _VERSION,
                "digest": digest,
                "sections": toc,
            },
            sort_keys=True,
            separators=(",", ":"),
        ).encode("utf-8")
        if _PRELUDE.size + len(header) <= header_space:
            break
        header_space *= 2
    out = bytearray(offset)
    out[: _PRELUDE.size] = _PRELUDE.pack(_MAGIC, header_space, len(header))
    out[_PRELUDE.size:_PRELUDE.size + len(header)] = header
    for name, data in sections:
        start = toc[name]["offset"]
        out[start:start + len(data)] = data
    return bytes(out)


def _aligned(offset: int) -> int:
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


def _read_header(view, where: str):
    if len(view) < _PRELUDE.size:
        raise SpzError("Truncated .spz blob %s." % (where,))
    magic, header_space, header_len = _PRELUDE.unpack_from(view, 0)
    if magic != _MAGIC:
        raise SpzError("Not a .spz blob: %s." % (where,))
    if _PRELUDE.size + header_len > header_space or header_space > len(view):
        raise SpzError("Corrupt .spz header %s." % (where,))
    try:
        header = json.loads(bytes(view[_PRELUDE.size:_PRELUDE.size + header_len]))
    except ValueError as error:
        raise SpzError("Corrupt .spz header %s: %s" % (where, error)) from error
    if header.get("format") != "repro-spz" or header.get("version") != _VERSION:
        raise SpzError("Unsupported .spz version %s." % (where,))
    return header


def _payload_bytes(view, header, where: str) -> bytes:
    section = header["sections"]["payload"]
    start, length = section["offset"], section["length"]
    if start + length > len(view):
        raise SpzError("Truncated .spz payload %s." % (where,))
    payload = bytes(view[start:start + length])
    digest = hashlib.sha256(payload).hexdigest()
    if digest != header.get("digest"):
        raise SpzError(
            "Payload digest mismatch %s: header says %s, content is %s."
            % (where, header.get("digest"), digest)
        )
    return payload


def read_spz_payload(path, expected_digest: Optional[str] = None) -> str:
    """Return the verified canonical payload text of a ``.spz`` file.

    Verifies the stored payload against the header digest (and
    ``expected_digest`` when given) without building the model; the
    journal restore path uses this to resolve content-addressed register
    records.
    """
    with open(path, "rb") as handle:
        view = handle.read()
    where = "at %s" % (path,)
    header = _read_header(view, where)
    payload = _payload_bytes(view, header, where)
    if expected_digest is not None and header["digest"] != expected_digest:
        raise SpzError(
            "Digest mismatch %s: expected %s, blob is %s."
            % (where, expected_digest, header["digest"])
        )
    return payload.decode("utf-8")


def load_spz(path, expected_digest: Optional[str] = None) -> CompiledSPE:
    """Map a ``.spz`` blob read-only and bind a :class:`CompiledSPE` to it.

    The arrays are bound zero-copy (``np.frombuffer`` over the mapping);
    the graph is rebuilt from the payload section and re-verified: the
    payload hash must match the stamped digest (and ``expected_digest``
    when given), and the rebuilt graph must re-serialize to the same
    digest — the same round-trip fidelity check serve workers perform on
    inline payloads.
    """
    path = os.fspath(path)
    where = "at %s" % (path,)
    with open(path, "rb") as handle:
        try:
            mapping = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
        except ValueError as error:
            raise SpzError("Cannot map .spz blob %s: %s" % (where, error)) from error
    try:
        header = _read_header(mapping, where)
        payload = _payload_bytes(mapping, header, where)
        if expected_digest is not None and header["digest"] != expected_digest:
            raise SpzError(
                "Digest mismatch %s: expected %s, blob is %s."
                % (where, expected_digest, header["digest"])
            )
        root = spe_from_dict(json.loads(payload.decode("utf-8")))
        if spe_digest(root) != header["digest"]:
            raise SpzError(
                "Round-trip digest mismatch %s: the rebuilt graph does not "
                "re-serialize to the stamped digest." % (where,)
            )
        nodes = _index_nodes(root)
        arrays = {}
        for name in _ARRAY_NAMES:
            section = header["sections"].get(name)
            if section is None:
                raise SpzError("Missing section %r %s." % (name, where))
            dtype = np.dtype(section["dtype"])
            shape = tuple(section["shape"])
            count = int(np.prod(shape)) if shape else 1
            end = section["offset"] + count * dtype.itemsize
            if end > len(mapping):
                raise SpzError("Truncated section %r %s." % (name, where))
            arrays[name] = np.frombuffer(
                mapping, dtype=dtype, count=count, offset=section["offset"]
            ).reshape(shape)
        kinds = arrays["node_kind"]
        if len(nodes) != len(kinds) or any(
            int(kinds[i]) != _node_kind(node) for i, node in enumerate(nodes)
        ):
            raise SpzError(
                "Node table mismatch %s: blob rows do not line up with the "
                "payload graph." % (where,)
            )
        return CompiledSPE(
            root, nodes, arrays, payload, header["digest"],
            source_path=path, mapping=mapping,
        )
    except Exception:
        # Drop any views bound in this frame before closing the mapping
        # (mmap.close() raises BufferError while views exist).
        arrays = kinds = None  # noqa: F841
        try:
            mapping.close()
        except BufferError:  # pragma: no cover
            pass
        raise


def _node_kind(node: SPE) -> int:
    if isinstance(node, Leaf):
        return KIND_LEAF
    if isinstance(node, SumSPE):
        return KIND_SUM
    if isinstance(node, ProductSPE):
        return KIND_PRODUCT
    return -1
