"""Primitive distributions for sum-product expression leaves."""

from .base import Distribution
from .base import NEG_INF
from .base import log_add
from .base import log_subtract
from .base import safe_log
from .discrete import DiscreteDistribution
from .discrete import DiscreteFinite
from .factories import DISTRIBUTION_CONSTRUCTORS
from .factories import atom
from .factories import atomic
from .factories import bernoulli
from .factories import beta
from .factories import binomial
from .factories import cauchy
from .factories import choice
from .factories import discrete
from .factories import exponential
from .factories import gamma
from .factories import geometric
from .factories import laplace
from .factories import lognormal
from .factories import negative_binomial
from .factories import normal
from .factories import poisson
from .factories import randint
from .factories import student_t
from .factories import truncated_normal
from .factories import uniform
from .factories import uniformd
from .nominal import NominalDistribution
from .real import AtomicDistribution
from .real import RealDistribution

__all__ = [
    "DISTRIBUTION_CONSTRUCTORS",
    "AtomicDistribution",
    "DiscreteDistribution",
    "DiscreteFinite",
    "Distribution",
    "NEG_INF",
    "NominalDistribution",
    "RealDistribution",
    "atom",
    "atomic",
    "bernoulli",
    "beta",
    "binomial",
    "cauchy",
    "choice",
    "discrete",
    "exponential",
    "gamma",
    "geometric",
    "laplace",
    "lognormal",
    "log_add",
    "log_subtract",
    "negative_binomial",
    "normal",
    "poisson",
    "randint",
    "safe_log",
    "student_t",
    "truncated_normal",
    "uniform",
    "uniformd",
]
