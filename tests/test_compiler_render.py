"""Tests for the inverse translation SPE -> SPPL source (Appendix E).

The key property (Eq. 46) is that re-compiling the rendered program yields a
distribution that assigns the same probability to every event over the
original variables.
"""

import pytest

from repro.compiler import compile_sppl
from repro.compiler import render_distribution
from repro.compiler import render_spe
from repro.compiler import render_transform
from repro.distributions import atomic
from repro.distributions import bernoulli
from repro.distributions import choice
from repro.distributions import normal
from repro.distributions import poisson
from repro.distributions import uniform
from repro.engine import SpplModel
from repro.transforms import Id
from repro.transforms import exp
from repro.transforms import log
from repro.transforms import sqrt

X = Id("X")
Y = Id("Y")
GPA = Id("GPA")


class TestRenderDistribution:
    def test_atomic(self):
        assert render_distribution(atomic(4)) == "atomic(4.0)"

    def test_choice(self):
        assert "India" in render_distribution(choice({"India": 0.5, "USA": 0.5}))

    def test_discrete_finite(self):
        assert "discrete" in render_distribution(bernoulli(0.3))

    def test_scipy_backed(self):
        rendered = render_distribution(normal(1, 2))
        assert rendered.startswith("scipydist('norm'")

    def test_rendered_distribution_is_parseable(self):
        for dist in [normal(0, 1), uniform(0, 4), poisson(3), bernoulli(0.2), atomic(7)]:
            source = "X ~ %s" % (render_distribution(dist),)
            model = compile_sppl(source)
            assert model.scope == frozenset(["X"])


class TestRenderTransform:
    def test_identity(self):
        assert render_transform(X) == "X"

    def test_polynomial(self):
        rendered = render_transform(2 * X + 1)
        assert "X" in rendered and "2" in rendered

    def test_nested_functions(self):
        assert "1/" in render_transform(1 / X)
        assert "abs" in render_transform(abs(X))
        assert "**(1/2)" in render_transform(sqrt(X))
        assert "exp" in render_transform(exp(X))
        assert "log" in render_transform(log(X))


class TestRoundTrip:
    def _assert_roundtrip(self, source, events):
        model = SpplModel.from_source(source)
        rendered = model.to_source()
        recompiled = SpplModel.from_source(rendered)
        for event in events:
            assert recompiled.prob(event) == pytest.approx(model.prob(event), abs=1e-9)

    def test_single_leaf(self):
        self._assert_roundtrip("X ~ normal(0, 1)", [X <= 0, X > 1])

    def test_product(self):
        self._assert_roundtrip(
            "X ~ normal(0, 1)\nY ~ uniform(0, 2)",
            [(X <= 0) & (Y <= 1), (X > 0) | (Y > 1.5)],
        )

    def test_mixture_with_transform(self):
        source = """
X ~ uniform(0, 4)
if X < 2:
    Z ~ 2*X + 1
else:
    Z ~ 9 - X
"""
        Z = Id("Z")
        self._assert_roundtrip(source, [Z <= 5, (Z > 5) & (X > 2), Z > 6.5])

    def test_indian_gpa_roundtrip(self):
        from repro.workloads.indian_gpa import SOURCE

        Nationality = Id("Nationality")
        Perfect = Id("Perfect")
        events = [
            Nationality == "USA",
            Perfect == 1,
            GPA <= 4,
            (GPA > 8) & (Nationality == "India"),
        ]
        self._assert_roundtrip(SOURCE, events)

    def test_rendered_source_mentions_every_variable(self):
        model = SpplModel.from_source("X ~ normal(0, 1)\nY ~ bernoulli(p=0.5)")
        rendered = render_spe(model.spe)
        assert "X" in rendered and "Y" in rendered
