"""Sum nodes: probabilistic mixtures of sum-product expressions."""

from __future__ import annotations

import math
from typing import Dict
from typing import FrozenSet
from typing import List
from typing import Optional
from typing import Sequence

from ..distributions import NEG_INF
from ..distributions import log_add
from ..events import Clause
from ..transforms import Transform
from .base import DensityPair
from .base import Memo
from .base import SPE
from .base import clause_key


class SumSPE(SPE):
    """A weighted mixture of sum-product expressions with identical scopes."""

    def __init__(self, children: Sequence[SPE], log_weights: Sequence[float]):
        children = list(children)
        log_weights = [float(w) for w in log_weights]
        if len(children) < 2:
            raise ValueError("SumSPE requires at least two children; use spe_sum().")
        if len(children) != len(log_weights):
            raise ValueError("SumSPE requires one weight per child.")
        scope = children[0].scope
        for child in children[1:]:
            if child.scope != scope:
                raise ValueError(
                    "All children of a SumSPE must have identical scope "
                    "(condition C4): %s vs %s."
                    % (sorted(scope), sorted(child.scope))
                )
        total = log_add(log_weights)
        if total == NEG_INF:
            raise ValueError("SumSPE weights must have positive total mass (C5).")
        self.children = tuple(children)
        self.log_weights = tuple(w - total for w in log_weights)
        self._scope = scope

    # -- Structure -----------------------------------------------------------

    @property
    def scope(self) -> FrozenSet[str]:
        return self._scope

    def children_nodes(self) -> List[SPE]:
        return list(self.children)

    @property
    def weights(self) -> List[float]:
        """Mixture weights in linear space."""
        return [math.exp(w) for w in self.log_weights]

    def __repr__(self) -> str:
        pairs = ", ".join(
            "%.4f: %r" % (math.exp(w), child)
            for w, child in zip(self.log_weights, self.children)
        )
        return "SumSPE(%s)" % (pairs,)

    def _restrict(self, clause: Clause) -> Clause:
        return {s: v for s, v in clause.items() if s in self._scope}

    # -- Inference ------------------------------------------------------------

    def logprob_clause(self, clause: Clause, memo: Memo) -> float:
        restricted = self._restrict(clause)
        key = (id(self), clause_key(restricted))
        if key in memo.logprob:
            return memo.logprob[key]
        terms = [
            w + child.logprob_clause(restricted, memo)
            for w, child in zip(self.log_weights, self.children)
        ]
        result = log_add(terms)
        memo.logprob[key] = result
        return result

    def condition_clause(self, clause: Clause, memo: Memo) -> Optional[SPE]:
        restricted = self._restrict(clause)
        key = (id(self), clause_key(restricted))
        if key in memo.condition:
            return memo.condition[key]
        weighted: List[SPE] = []
        log_weights: List[float] = []
        for w, child in zip(self.log_weights, self.children):
            child_logprob = child.logprob_clause(restricted, memo)
            if child_logprob == NEG_INF:
                continue
            conditioned = child.condition_clause(restricted, memo)
            if conditioned is None:
                continue
            weighted.append(conditioned)
            log_weights.append(w + child_logprob)
        result = spe_sum(weighted, log_weights) if weighted else None
        memo.condition[key] = result
        return result

    def logpdf_pair(self, assignment: Dict[str, object], memo: Memo) -> DensityPair:
        key = (id(self),)
        if key in memo.logpdf:
            return memo.logpdf[key]
        pairs = [
            (child.logpdf_pair(assignment, memo), w)
            for w, child in zip(self.log_weights, self.children)
        ]
        positive = [(d, lp, w) for (d, lp), w in pairs if lp > NEG_INF]
        if not positive:
            result = (1, NEG_INF)
        else:
            min_count = min(d for d, _, _ in positive)
            terms = [w + lp for d, lp, w in positive if d == min_count]
            result = (min_count, log_add(terms))
        memo.logpdf[key] = result
        return result

    def constrain_clause(
        self, assignment: Dict[str, object], memo: Memo
    ) -> Optional[SPE]:
        key = (id(self),)
        if key in memo.constrain:
            return memo.constrain[key]
        densities = [
            child.logpdf_pair(assignment, memo) for child in self.children
        ]
        positive = [
            (i, d, lp) for i, (d, lp) in enumerate(densities) if lp > NEG_INF
        ]
        if not positive:
            memo.constrain[key] = None
            return None
        min_count = min(d for _, d, _ in positive)
        children: List[SPE] = []
        log_weights: List[float] = []
        for i, d, lp in positive:
            if d != min_count:
                continue
            constrained = self.children[i].constrain_clause(assignment, memo)
            if constrained is None:
                continue
            children.append(constrained)
            log_weights.append(self.log_weights[i] + lp)
        result = spe_sum(children, log_weights) if children else None
        memo.constrain[key] = result
        return result

    # -- Derived variables and sampling ---------------------------------------

    def transform(self, symbol: str, expression: Transform) -> SPE:
        children = [child.transform(symbol, expression) for child in self.children]
        return SumSPE(children, self.log_weights)

    def sample_assignment(self, rng) -> Dict[str, object]:
        index = rng.choice(len(self.children), p=self.weights)
        return self.children[int(index)].sample_assignment(rng)


def spe_sum(children: Sequence[SPE], log_weights: Sequence[float]) -> SPE:
    """Canonicalizing constructor for mixtures.

    Normalizes the weights, splices nested sums with identical scope,
    merges duplicate children (by node identity), and collapses singleton
    mixtures.
    """
    children = list(children)
    log_weights = [float(w) for w in log_weights]
    if not children:
        raise ValueError("spe_sum requires at least one child.")
    if len(children) != len(log_weights):
        raise ValueError("spe_sum requires one weight per child.")
    total = log_add(log_weights)
    if total == NEG_INF:
        raise ValueError("spe_sum requires positive total weight.")
    normalized = [w - total for w in log_weights]

    # Splice nested sums of identical scope into this one.
    flat_children: List[SPE] = []
    flat_weights: List[float] = []
    for child, weight in zip(children, normalized):
        if isinstance(child, SumSPE):
            for sub_weight, sub_child in zip(child.log_weights, child.children):
                flat_children.append(sub_child)
                flat_weights.append(weight + sub_weight)
        else:
            flat_children.append(child)
            flat_weights.append(weight)

    # Merge duplicate children (deduplication by physical identity).
    merged: Dict[int, int] = {}
    unique_children: List[SPE] = []
    unique_weights: List[float] = []
    for child, weight in zip(flat_children, flat_weights):
        if id(child) in merged:
            index = merged[id(child)]
            unique_weights[index] = log_add([unique_weights[index], weight])
        else:
            merged[id(child)] = len(unique_children)
            unique_children.append(child)
            unique_weights.append(weight)

    if len(unique_children) == 1:
        return unique_children[0]
    return SumSPE(unique_children, unique_weights)
