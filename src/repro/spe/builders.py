"""Construction-time optimizations: factorization of sums of products.

Implements the *factorization* optimization of Sec. 5.1 (Fig. 6a): when the
children of a mixture are products that share common components (detected by
physical sharing, the paper's O(1) memory-address comparison), the shared
components are factored out of the mixture, which keeps the expression graph
small when if/else branches only modify a subset of the variables.

With hash-consed interning (:mod:`~repro.spe.interning`) physical sharing
subsumes structural equality: components that are merely *structurally*
equal across branches -- e.g. identical emission leaves built separately in
each branch of the hierarchical HMM -- resolve to one canonical node before
factorization runs, so the common-component detection fires far more often
than under the seed's purely address-based scheme.
"""

from __future__ import annotations

from typing import Dict
from typing import List
from typing import Sequence

from .base import SPE
from .leaf import Leaf
from .product_node import ProductSPE
from .product_node import spe_product
from .sum_node import SumSPE
from .sum_node import spe_sum


def factor_sum_of_products(children: Sequence[SPE], log_weights: Sequence[float]) -> SPE:
    """Build a mixture, factoring out product components shared by identity."""
    children = list(children)
    log_weights = list(log_weights)
    if len(children) != len(log_weights):
        raise ValueError("factor_sum_of_products requires one weight per child.")
    if not children:
        raise ValueError("factor_sum_of_products requires at least one child.")
    if len(children) == 1:
        return children[0]

    first = children[0]
    if all(child is first for child in children[1:]):
        return first

    if not all(isinstance(child, ProductSPE) for child in children):
        return spe_sum(children, log_weights)

    common_uids = set(gc._uid for gc in children[0].children)
    for child in children[1:]:
        common_uids &= set(gc._uid for gc in child.children)
    if not common_uids:
        return spe_sum(children, log_weights)

    shared: List[SPE] = [gc for gc in children[0].children if gc._uid in common_uids]
    residuals: List[List[SPE]] = [
        [gc for gc in child.children if gc._uid not in common_uids]
        for child in children
    ]

    if all(not residual for residual in residuals):
        return spe_product(shared)
    if any(not residual for residual in residuals):
        return spe_sum(children, log_weights)

    residual_scopes = [
        frozenset().union(*[gc.scope for gc in residual]) for residual in residuals
    ]
    if len(set(residual_scopes)) != 1:
        return spe_sum(children, log_weights)

    inner = spe_sum([spe_product(residual) for residual in residuals], log_weights)
    return spe_product(shared + [inner])


def factor_shared(spe: SPE) -> SPE:
    """Globally re-factor shared product components out of every mixture.

    :func:`factor_sum_of_products` only runs where the translator happens
    to build a mixture (if/else sites); mixtures produced by *conditioning*
    during translation never see it, and in the pre-hash-consing design
    their components only became physically shared at the final
    deduplication pass -- after every factoring decision had already been
    taken.  With interning, sharing exists the moment nodes are built, so
    this bottom-up pass (iterative, recursion-safe) can recover the
    factored form of Fig. 6a across the whole graph.  Passes repeat while
    the node count strictly decreases; the result is returned only when it
    is no larger than the input.
    """
    for _ in range(10):
        rebuilt: Dict[int, SPE] = {}
        stack: List[SPE] = [spe]
        while stack:
            node = stack[-1]
            if node._uid in rebuilt:
                stack.pop()
                continue
            children = node.children_nodes()
            pending = [c for c in children if c._uid not in rebuilt]
            if pending:
                stack.extend(pending)
                continue
            new_children = [rebuilt[c._uid] for c in children]
            if isinstance(node, Leaf):
                result: SPE = node
            elif isinstance(node, SumSPE):
                result = factor_sum_of_products(new_children, node.log_weights)
            elif isinstance(node, ProductSPE):
                if all(n is c for n, c in zip(new_children, children)):
                    result = node
                else:
                    result = spe_product(new_children)
            else:
                result = node
            rebuilt[node._uid] = result
            stack.pop()
        candidate = rebuilt[spe._uid]
        if candidate is spe or candidate.size() >= spe.size():
            break
        spe = candidate
    return spe
