"""Unit tests for the textual SPPL parser."""

import math

import numpy as np
import pytest

from repro.compiler import SpplParseError
from repro.compiler import compile_sppl
from repro.compiler import parse_sppl
from repro.transforms import Id

X = Id("X")
Y = Id("Y")
Z = Id("Z")


class TestBasicParsing:
    def test_sample_statement(self):
        model = compile_sppl("X ~ normal(0, 1)")
        assert model.scope == frozenset(["X"])
        assert model.prob(X <= 0) == pytest.approx(0.5)

    def test_keyword_arguments(self):
        model = compile_sppl("X ~ bernoulli(p=0.25)")
        assert model.prob(X == 1) == pytest.approx(0.25)

    def test_constant_assignment_is_not_random(self):
        model = compile_sppl("mu = 3\nX ~ normal(mu, 1)")
        assert model.scope == frozenset(["X"])
        assert model.prob(X <= 3) == pytest.approx(0.5)

    def test_constant_lists_and_indexing(self):
        source = """
mus = [0, 10]
X ~ normal(mus[1], 1)
"""
        model = compile_sppl(source)
        assert model.prob(X <= 10) == pytest.approx(0.5)

    def test_atomic_constant_binding(self):
        model = compile_sppl("X ~ 4")
        assert model.prob(X == 4) == pytest.approx(1.0)

    def test_string_constant_binding(self):
        model = compile_sppl("X ~ 'hello'")
        assert model.prob(X == "hello") == pytest.approx(1.0)

    def test_transform_binding(self):
        source = """
X ~ uniform(0, 2)
Z ~ 3*X + 1
"""
        model = compile_sppl(source)
        assert model.prob(Z <= 4) == pytest.approx(0.5)

    def test_transform_with_equals_sign(self):
        source = """
X ~ uniform(0, 2)
Z = 3*X + 1
"""
        model = compile_sppl(source)
        assert model.prob(Z <= 4) == pytest.approx(0.5)

    def test_sqrt_and_power(self):
        source = """
X ~ uniform(0, 4)
Z ~ 5*sqrt(X) + 11
"""
        model = compile_sppl(source)
        assert model.prob(Z <= 16) == pytest.approx(0.25)

    def test_external_constants(self):
        model = compile_sppl("X ~ normal(mu, 1)", constants={"mu": 7})
        assert model.prob(X <= 7) == pytest.approx(0.5)

    def test_comments_and_docstrings_ignored(self):
        source = '''
"""A documented program."""
# a comment
X ~ uniform(0, 1)  # inline comment
'''
        model = compile_sppl(source)
        assert model.scope == frozenset(["X"])


class TestControlFlow:
    def test_if_else(self):
        source = """
X ~ uniform(0, 10)
if X < 4:
    Y ~ bernoulli(p=0.9)
else:
    Y ~ bernoulli(p=0.1)
"""
        model = compile_sppl(source)
        assert model.prob(Y == 1) == pytest.approx(0.4 * 0.9 + 0.6 * 0.1)

    def test_elif_chain(self):
        source = """
X ~ uniform(0, 9)
if X < 3:
    Y ~ 0
elif X < 6:
    Y ~ 1
else:
    Y ~ 2
"""
        model = compile_sppl(source)
        for value in (0, 1, 2):
            assert model.prob(Y == value) == pytest.approx(1.0 / 3.0)

    def test_bare_variable_test_means_equal_one(self):
        source = """
B ~ bernoulli(p=0.3)
if B:
    Y ~ 1
else:
    Y ~ 0
"""
        model = compile_sppl(source)
        assert model.prob(Y == 1) == pytest.approx(0.3)

    def test_chained_comparison(self):
        source = """
X ~ uniform(0, 10)
condition(2 < X < 4)
"""
        model = compile_sppl(source)
        assert model.prob(X < 3) == pytest.approx(0.5)

    def test_boolean_operators(self):
        source = """
X ~ uniform(0, 1)
Y ~ uniform(0, 1)
if (X < 0.5) and (Y < 0.5):
    Z ~ 1
else:
    Z ~ 0
"""
        model = compile_sppl(source)
        assert model.prob(Z == 1) == pytest.approx(0.25)

    def test_not_operator(self):
        source = """
X ~ uniform(0, 1)
if not (X < 0.25):
    Z ~ 1
else:
    Z ~ 0
"""
        model = compile_sppl(source)
        assert model.prob(Z == 1) == pytest.approx(0.75)

    def test_for_loop_over_array(self):
        source = """
n = 3
X = array(n)
X[0] ~ bernoulli(p=0.5)
for t in range(1, n):
    if X[t-1] == 1:
        X[t] ~ bernoulli(p=0.9)
    else:
        X[t] ~ bernoulli(p=0.1)
"""
        model = compile_sppl(source)
        assert model.scope == frozenset(["X[0]", "X[1]", "X[2]"])
        assert model.prob(Id("X[2]") == 1) == pytest.approx(0.5)

    def test_switch_iterator(self):
        source = """
mus = [0, 10]
B ~ bernoulli(p=0.5)
for b in switch(B, [0, 1]):
    X ~ normal(mus[b], 1)
"""
        model = compile_sppl(source)
        assert model.prob(X > 5) == pytest.approx(0.5, abs=1e-6)

    def test_condition_statement(self):
        source = """
X ~ normal(0, 1)
condition(X > 0)
"""
        model = compile_sppl(source)
        assert model.prob(X > 1) == pytest.approx(0.3173105 / 2 / 0.5, rel=1e-4)

    def test_membership_condition(self):
        source = """
N ~ choice({'a': 0.2, 'b': 0.3, 'c': 0.5})
condition(N in {'a', 'b'})
"""
        model = compile_sppl(source)
        assert model.prob(Id("N") == "a") == pytest.approx(0.4)


class TestParserErrors:
    def test_unknown_name(self):
        with pytest.raises(SpplParseError):
            compile_sppl("X ~ normal(unknown_constant, 1)")

    def test_unsupported_statement(self):
        with pytest.raises(SpplParseError):
            parse_sppl("while True:\n    pass")

    def test_invalid_syntax(self):
        with pytest.raises(SpplParseError):
            parse_sppl("X ~ ~ normal(0,1) :::")

    def test_comparing_two_random_variables_rejected(self):
        source = """
X ~ normal(0, 1)
Y ~ normal(0, 1)
condition(X < Y)
"""
        with pytest.raises(SpplParseError):
            parse_sppl(source)

    def test_loop_over_non_constant_rejected(self):
        source = """
X ~ normal(0, 1)
for i in X:
    Y ~ normal(0, 1)
"""
        with pytest.raises(SpplParseError):
            parse_sppl(source)

    def test_array_index_must_be_integer(self):
        source = """
X = array(3)
X[0.5] ~ normal(0, 1)
"""
        with pytest.raises(SpplParseError):
            parse_sppl(source)


class TestParseEventScope:
    def test_indexed_scope_names_enable_subscript_syntax(self):
        # Serving boundary: scope names like "X[0]" (loop-translated
        # arrays) make "X" resolvable as an array in query strings.
        from repro.compiler import SpplParser

        parser = SpplParser()
        event = parser.parse_event("X[1] < 0.5", scope=["X[0]", "X[1]", "Y"])
        assert event.get_symbols() == {"X[1]"}

    def test_subscript_and_plain_names_combine(self):
        from repro.compiler import SpplParser

        event = SpplParser().parse_event(
            "X[0] < 0.5 and Y == 1", scope=["X[0]", "Y"]
        )
        assert event.get_symbols() == {"X[0]", "Y"}

    def test_model_level_textual_query_on_indexed_variables(self):
        from repro.workloads import hmm

        model = hmm.model(2)
        assert model.logprob("X[0] < 0.5") == model.logprob(Id("X[0]") < 0.5)

    def test_unknown_subscript_base_still_rejected(self):
        from repro.compiler import SpplParser

        with pytest.raises(SpplParseError):
            SpplParser().parse_event("W[0] < 1", scope=["X[0]"])


class TestFlippedComparisons:
    def test_constant_on_left(self):
        model = compile_sppl("X ~ uniform(0, 10)\ncondition(3 > X)")
        assert model.prob(X < 1.5) == pytest.approx(0.5)

    def test_constant_on_left_equality(self):
        model = compile_sppl("N ~ choice({'a': 0.5, 'b': 0.5})\ncondition('a' == N)")
        assert model.prob(Id("N") == "a") == pytest.approx(1.0)


class TestParserMatchesCommandDsl:
    def test_indian_gpa_equivalence(self):
        from repro.workloads import indian_gpa

        model = indian_gpa.model()
        assert model.prob(Id("Perfect") == 1) == pytest.approx(0.125)
        assert model.prob(Id("GPA") <= 4) == pytest.approx(0.5 * 0.9 * 0.4 + 0.5)
