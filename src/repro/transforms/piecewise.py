"""Piecewise transforms: a transform defined by cases over events."""

from __future__ import annotations

import math
from typing import FrozenSet
from typing import List
from typing import Sequence
from typing import Tuple

from ..sets import EMPTY_SET
from ..sets import OutcomeSet
from ..sets import intersection
from ..sets import union
from .base import Transform
from .identity import Identity


class Piecewise(Transform):
    """A transform defined piecewise: ``t_i(x)`` whenever ``x`` satisfies ``e_i``.

    All branch transforms and branch events must mention the same single
    variable.  The branches are evaluated in order; the transform is
    undefined outside the union of the branch events.
    """

    def __init__(self, branches: Sequence[Tuple[Transform, "object"]]):
        branches = list(branches)
        if not branches:
            raise ValueError("Piecewise requires at least one branch.")
        symbols = set()
        for transform, event in branches:
            if not isinstance(transform, Transform):
                raise TypeError("Piecewise branch transform expected, got %r." % (transform,))
            symbols |= set(transform.get_symbols())
            symbols |= set(event.get_symbols())
        if len(symbols) != 1:
            raise ValueError(
                "Piecewise branches must all mention the same single variable "
                "(got %r)." % (sorted(symbols),)
            )
        self._symbol = next(iter(symbols))
        self.branches = tuple((t, e) for (t, e) in branches)

    @property
    def subexpr(self) -> Transform:
        return Identity(self._symbol)

    def get_symbols(self) -> FrozenSet[str]:
        return frozenset([self._symbol])

    def substitute(self, symbol: str, replacement: Transform) -> Transform:
        if symbol != self._symbol:
            return self
        if not isinstance(replacement, Identity):
            raise ValueError(
                "Piecewise transforms may only be renamed, not composed "
                "(attempted substitution of %r)." % (replacement,)
            )
        return self.rename({symbol: replacement.token})

    def rename(self, mapping) -> Transform:
        return Piecewise(
            [(t.rename(mapping), e.rename(mapping)) for (t, e) in self.branches]
        )

    def evaluate(self, x: float) -> float:
        for transform, event in self.branches:
            if event.evaluate({self._symbol: x}):
                return transform.evaluate(x)
        return math.nan

    def invert_level(self, values: OutcomeSet) -> OutcomeSet:
        return self.invert(values)

    def invert(self, values: OutcomeSet) -> OutcomeSet:
        pieces: List[OutcomeSet] = []
        for transform, event in self.branches:
            region = intersection(transform.invert(values), event.solve())
            if not region.is_empty:
                pieces.append(region)
        if not pieces:
            return EMPTY_SET
        return union(*pieces)

    def _key(self):
        return (
            "Piecewise",
            tuple((t._key(), repr(e)) for (t, e) in self.branches),
        )

    def __repr__(self) -> str:
        return "Piecewise(%s)" % (list(self.branches),)
