"""Tests of Theorem 4.1: sum-product expressions are closed under conditioning.

For every prior S and positive-probability event e, the conditioned
expression S' = condition(S, e) must satisfy, for every query event e',

    P_{S'}(e') == P_S(e and e') / P_S(e).
"""

import math

import numpy as np
import pytest

from repro.distributions import atomic
from repro.distributions import bernoulli
from repro.distributions import choice
from repro.distributions import normal
from repro.distributions import poisson
from repro.distributions import uniform
from repro.spe import Leaf
from repro.spe import ProductSPE
from repro.spe import SumSPE
from repro.spe import spe_product
from repro.spe import spe_sum
from repro.transforms import Id
from repro.transforms import sqrt

X = Id("X")
Y = Id("Y")
N = Id("N")
K = Id("K")
Z = Id("Z")


def _models():
    """A collection of structurally-diverse sum-product expressions."""
    mixed_leaf = Leaf("X", normal(0, 2), env={"Z": X ** 2 + 1})
    mixture = spe_sum(
        [Leaf("X", uniform(0, 4)), Leaf("X", normal(5, 1), env={})],
        [math.log(0.3), math.log(0.7)],
    )
    product = spe_product(
        [
            Leaf("X", normal(0, 1)),
            Leaf("Y", uniform(0, 10)),
            Leaf("N", choice({"a": 0.25, "b": 0.75})),
            Leaf("K", poisson(3)),
        ]
    )
    hierarchical = spe_sum(
        [
            spe_product([Leaf("N", choice({"a": 1.0})), Leaf("X", uniform(0, 10))]),
            spe_product([Leaf("N", choice({"b": 1.0})), Leaf("X", atomic(4))]),
        ],
        [math.log(0.6), math.log(0.4)],
    )
    return {
        "leaf-with-transform": mixed_leaf,
        "mixture": mixture,
        "product": product,
        "hierarchical": hierarchical,
    }


def _events_for(name):
    if name == "leaf-with-transform":
        return [X > 0, Z <= 5, (Z > 2) & (X < 0), (X < -1) | (X > 1)]
    if name == "mixture":
        return [X <= 2, (X <= 1) | (X >= 5), X > 3]
    if name == "product":
        return [
            (X > 0) & (Y < 5),
            (N == "a") | (K >= 5),
            (X > 0) | (Y < 5),
            (N == "b") & (K << {0, 1, 2}) & (Y > 1),
        ]
    if name == "hierarchical":
        return [N == "a", X >= 4, (N == "b") | (X < 2)]
    raise KeyError(name)


class TestClosureUnderConditioning:
    @pytest.mark.parametrize("name", sorted(_models()))
    def test_conditional_probability_identity(self, name):
        model = _models()[name]
        events = _events_for(name)
        for conditioning_event in events:
            p_event = model.prob(conditioning_event)
            if p_event <= 0:
                continue
            posterior = model.condition(conditioning_event)
            for query in events:
                joint = model.prob(conditioning_event & query)
                assert posterior.prob(query) == pytest.approx(
                    joint / p_event, abs=1e-9
                ), "closure violated for %s: condition=%r query=%r" % (
                    name,
                    conditioning_event,
                    query,
                )

    @pytest.mark.parametrize("name", sorted(_models()))
    def test_conditioning_event_has_posterior_probability_one(self, name):
        model = _models()[name]
        for event in _events_for(name):
            if model.prob(event) <= 0:
                continue
            posterior = model.condition(event)
            assert posterior.prob(event) == pytest.approx(1.0, abs=1e-9)

    @pytest.mark.parametrize("name", sorted(_models()))
    def test_probability_of_event_and_negation_sums_to_one(self, name):
        model = _models()[name]
        for event in _events_for(name):
            total = model.prob(event) + model.prob(event.negate())
            assert total == pytest.approx(1.0, abs=1e-9)

    @pytest.mark.parametrize("name", sorted(_models()))
    def test_repeated_conditioning_composes(self, name):
        model = _models()[name]
        events = _events_for(name)
        first, second = events[0], events[1]
        joint = first & second
        if model.prob(joint) <= 0:
            return
        once = model.condition(joint)
        twice = model.condition(first).condition(second)
        for query in events:
            assert once.prob(query) == pytest.approx(twice.prob(query), abs=1e-9)

    def test_conditioning_zero_probability_event_raises(self):
        model = Leaf("X", uniform(0, 1))
        with pytest.raises(ValueError):
            model.condition(X > 2)


class TestTransformedConditioning:
    def test_many_to_one_transform_conditioning(self):
        # The Fig. 4 scenario, built directly as an SPE.
        left = Leaf("X", normal(0, 2)).condition(X < 1).transform(
            "Z", -(X ** 3) + X ** 2 + 6 * X
        )
        right = Leaf("X", normal(0, 2)).condition(X >= 1).transform(
            "Z", -5 * sqrt(X) + 11
        )
        prior = spe_sum(
            [left, right],
            [Leaf("X", normal(0, 2)).logprob(X < 1), Leaf("X", normal(0, 2)).logprob(X >= 1)],
        )
        posterior = prior.condition((Z ** 2 <= 4) & (Z >= 0))
        assert posterior.prob((Z >= 0) & (Z <= 2)) == pytest.approx(1.0)
        weights = [
            posterior.prob((X >= -2.5) & (X <= -2.0)),
            posterior.prob((X >= 0.0) & (X <= 0.5)),
            posterior.prob((X >= 3.0) & (X <= 5.0)),
        ]
        assert weights[0] == pytest.approx(0.16, abs=0.02)
        assert weights[1] == pytest.approx(0.49, abs=0.02)
        assert weights[2] == pytest.approx(0.35, abs=0.02)

    def test_conditioning_on_set_valued_nominal_constraint(self):
        model = spe_product(
            [Leaf("N", choice({"a": 0.2, "b": 0.3, "c": 0.5})), Leaf("X", uniform(0, 1))]
        )
        posterior = model.condition(N << {"a", "b"})
        assert posterior.prob(N == "c") == 0.0
        assert posterior.prob(N == "a") == pytest.approx(0.4)

    def test_conditioning_preserves_independent_marginals(self):
        model = spe_product([Leaf("X", normal(0, 1)), Leaf("Y", uniform(0, 10))])
        posterior = model.condition(X > 0)
        assert posterior.prob(Y <= 5) == pytest.approx(0.5)
