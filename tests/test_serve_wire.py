"""Wire-format tests: NDJSON request parsing and response encoding."""

import json
import math

import pytest

from repro.serve import wire


class TestParseRequest:
    def test_logprob_request(self):
        request = wire.parse_request_line(
            b'{"id": 7, "model": "m", "kind": "logprob", "event": "X < 1"}'
        )
        assert request.id == 7
        assert request.model == "m"
        assert request.kind == "logprob"
        assert request.payload == "X < 1"
        assert request.condition is None
        assert not request.no_batch

    def test_condition_and_no_batch(self):
        request = wire.parse_request_line(
            b'{"model": "m", "kind": "prob", "event": "X < 1", '
            b'"condition": "Y > 0", "no_batch": true}'
        )
        assert request.condition == "Y > 0"
        assert request.no_batch

    def test_logpdf_request(self):
        request = wire.parse_request_line(
            b'{"model": "m", "kind": "logpdf", "assignment": {"X": 1.5}}'
        )
        assert request.payload == {"X": 1.5}

    def test_sample_request(self):
        request = wire.parse_request_line(
            b'{"model": "m", "kind": "sample", "n": 3, "seed": 0}'
        )
        assert request.payload == {"n": 3, "seed": 0}

    def test_sample_defaults(self):
        request = wire.parse_request_line(b'{"model": "m", "kind": "sample"}')
        assert request.payload == {"n": None, "seed": None}

    @pytest.mark.parametrize(
        "line",
        [
            b"not json at all",
            b'"just a string"',
            b'{"kind": "logprob", "event": "X < 1"}',  # no model
            b'{"model": "m", "kind": "wat", "event": "X < 1"}',  # bad kind
            b'{"model": "m", "kind": "logprob"}',  # no event
            b'{"model": "m", "kind": "logprob", "event": 3}',  # non-text event
            b'{"model": "m", "kind": "logpdf"}',  # no assignment
            b'{"model": "m", "kind": "logpdf", "assignment": {}}',
            b'{"model": "m", "kind": "sample", "n": 0}',
            b'{"model": "m", "kind": "sample", "n": true}',
            b'{"model": "m", "kind": "sample", "seed": "x"}',
            b'{"model": "m", "kind": "logprob", "event": "E", "condition": 1}',
        ],
    )
    def test_rejected_lines(self, line):
        with pytest.raises(wire.WireError):
            wire.parse_request_line(line)


class TestValueEncoding:
    def test_finite_floats_round_trip_bit_exact(self):
        for value in (0.1, -1.5e-300, 7.234817e12, math.pi, -0.0):
            over_wire = json.loads(json.dumps(wire.encode_value(value)))
            assert wire.decode_value(over_wire) == value

    def test_non_finite_floats(self):
        assert wire.encode_value(math.inf) == "inf"
        assert wire.encode_value(-math.inf) == "-inf"
        assert wire.encode_value(math.nan) == "nan"
        assert wire.decode_value("-inf") == -math.inf
        assert math.isnan(wire.decode_value("nan"))

    def test_containers_and_numpy_scalars(self):
        import numpy as np

        encoded = wire.encode_value(
            {"a": [np.int64(3), np.float64(0.5)], "b": (True, "s", None)}
        )
        assert encoded == {"a": [3, 0.5], "b": [True, "s", None]}
        assert json.dumps(encoded)  # JSON-serializable

    def test_unencodable_value_raises(self):
        with pytest.raises(wire.WireError):
            wire.encode_value(object())


class TestResponses:
    def test_ok_response_round_trip(self):
        line = wire.encode_response("r1", wire.ok(-math.inf))
        decoded = wire.decode_response_line(line)
        assert decoded["id"] == "r1"
        assert decoded["ok"] is True
        assert wire.decode_value(decoded["value"]) == -math.inf

    def test_error_response(self):
        line = wire.encode_response(2, wire.error(ValueError("boom")))
        decoded = wire.decode_response_line(line)
        assert decoded["ok"] is False
        assert decoded["error_kind"] == "ValueError"
        assert decoded["error"] == "boom"

    def test_error_results_replicates(self):
        results = wire.error_results(RuntimeError("x"), 3)
        assert len(results) == 3
        assert all(result[0] == "error" for result in results)

    def test_malformed_response_line_raises(self):
        with pytest.raises(wire.WireError):
            wire.decode_response_line(b'{"id": 1}')
