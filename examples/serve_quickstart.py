"""Quickstart: serving exact inference as a micro-batching service.

Demonstrates the ``repro.serve`` subsystem end to end:

1. register models (workloads catalog + a model serialized to disk),
2. start an in-process :class:`~repro.serve.InferenceService`
   (asyncio HTTP front-end with a 2 ms coalescing window),
3. fire a burst of concurrent single-event queries — the scheduler
   coalesces them into a handful of batched ``logprob_batch`` calls,
4. run posterior-chain queries (a ``condition`` field on the wire),
5. read the stats endpoint (coalescing counters, exact cache hit/miss,
   per-kind latency percentiles, and per-pass **query-planner**
   counters — the registry plans every served model in ``validated``
   mode by default, so corpus-proven bit-identical rewrites like
   disjoint-scope factoring apply automatically and semantically equal
   query spellings share one result-cache entry),
6. register a new model on the **live** service (no restart), query it,
   and unregister it again — with a registry **journal** attached, so
   the registration would survive a service restart,
7. register a model by the **path + digest** of a compiled ``.spz``
   blob: the service mmaps the content-addressed file instead of
   deserializing a payload, so every worker shard shares one physical
   copy of the compiled tables,
8. fetch the **execution trace** of one query (``"trace": true`` on the
   wire, ``GET /v1/trace/<id>`` to retrieve) and print its span tree —
   queue wait, coalesced batch, planner pass outcome, cache hit/miss,
   and the compiled-vs-interpreted engine route, span by span,
9. open a **streaming posterior session** (``POST /v1/sessions``): each
   ``observe`` extends a named condition chain held only in the
   front-end, routed by session affinity to a cache-warm shard, with
   commit-on-success (rejected evidence leaves the chain untouched) —
   the wire posterior stays bit-identical to an in-process
   :class:`~repro.engine.PosteriorChain` over the same events, and
   tenant namespaces/quotas (``--max-sessions``, ``--session-ttl-s``,
   ``--max-sessions-per-tenant``, ``--max-queued-per-tenant``) bound
   what any one caller can hold,
10. start a **remote inference node** (``python -m repro.serve.node``)
   and join it into a second service's consistent-hash ring alongside a
   local worker shard: same digest handshake, same bit-identical
   answers, per-node health on ``/v1/stats`` — and if the node dies, its
   shard is marked dead, traffic fails over to the survivors, and the
   liveness probe re-admits it when it comes back.

The same service runs standalone with worker-process sharding (dead
workers are respawned transparently) and a durable lifecycle journal::

    python -m repro.serve --model hmm20 --workers 4 \
        --blob-dir /var/lib/repro/blobs \
        --registry-journal /var/lib/repro/registry.journal

To spread shards across hosts, run a node per machine and point the
front-end at them::

    python -m repro.serve.node --listen 0.0.0.0:9310 \
        --blob-dir /var/lib/repro/blobs            # on each worker host
    python -m repro.serve --model hmm20 --workers 2 \
        --nodes host-a:9310,host-b:9310            # on the front-end

Each node hosts one shard behind a framed TCP transport (length-prefixed
JSON; floats cross bit-exactly).  Connecting *is* the handshake: the
front-end ships its current model specs, the node loads them (fetching
content-addressed ``.spz`` blobs from its own ``--blob-dir`` when the
front-end's paths don't resolve locally) and answers with recomputed
digests.  A node that was down during a live registration catches up
from the same hello on reconnect.

With ``--blob-dir`` every model is compiled once into a
``<digest>.spz`` blob and all worker shards mmap the same read-only
file; live registrations journal the blob path (not the payload), so a
restart re-maps the blob after re-verifying its digest.  On restart,
the journal is replayed (digest-verified) before serving, so models
registered through ``/v1/models/register`` come back without any
``--model`` flag.

Run with::

    python examples/serve_quickstart.py
"""

import asyncio
import tempfile
from pathlib import Path

from repro.serve import AsyncServeClient
from repro.serve import InferenceService
from repro.serve import ModelRegistry
from repro.serve import RegistryJournal
from repro.serve import value_of
from repro.workloads import indian_gpa


async def main() -> None:
    # -- 1. Register models ---------------------------------------------------
    registry = ModelRegistry()  # plans in "validated" mode by default
    registry.register_catalog("hmm20")
    registry.register_catalog("noisy_or")

    # Models serialized with SpplModel.save() are served too — this is
    # how a conditioned posterior, expensive to recompute, is deployed.
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "gpa.json"
        indian_gpa.model().save(path)
        registry.register_file(path, name="gpa")

        # -- 2. Start the service --------------------------------------------
        # The journal makes live registrations durable: replayed on the
        # next startup (the CLI equivalent is --registry-journal PATH).
        journal = RegistryJournal(Path(tmp) / "registry.journal")
        journal.restore(registry)
        service = InferenceService(registry, workers=0, window=0.002, journal=journal)
        host, port = await service.start()
        client = AsyncServeClient(host, port)
        print("serving %s on %s:%d" % (", ".join(registry.names()), host, port))

        # -- 3. A burst of concurrent single-event queries -------------------
        burst = [
            {
                "id": i,
                "model": "hmm20",
                "kind": "logprob",
                "event": "X[%d] < %.2f" % (i % 20, 0.5 + 0.01 * i),
            }
            for i in range(64)
        ]
        responses = await client.query_many(burst, connections=8)
        print(
            "burst of %d queries -> first three: %s"
            % (len(burst), [round(value_of(r), 4) for r in responses[:3]])
        )

        # -- 4. Posterior-chain queries (consistent-hash routed) -------------
        chain = [
            {
                "model": "gpa",
                "kind": "prob",
                "event": "GPA > %.1f" % threshold,
                "condition": "Nationality == 'India'",
            }
            for threshold in (2.0, 4.0, 8.0, 9.5)
        ]
        for request, response in zip(chain, await client.query_many(chain)):
            print("  P(%s | India) = %.4f" % (request["event"], value_of(response)))

        # -- 5. Service statistics -------------------------------------------
        stats = await client.stats()
        scheduler = stats["scheduler"]
        print(
            "scheduler: %d requests coalesced into %d batches (mean %.1f/batch)"
            % (scheduler["requests"], scheduler["batches"], scheduler["mean_batch_size"])
        )
        hmm_cache = stats["backend"]["models"]["hmm20"]
        print(
            "hmm20 cache: %d hits / %d misses (exact counters)"
            % (hmm_cache["hits"], hmm_cache["misses"])
        )
        latency = scheduler["latency"]["logprob"]
        print(
            "logprob latency: p50 %.2f ms / p95 %.2f ms / p99 %.2f ms over %d requests"
            % (latency["p50_ms"], latency["p95_ms"], latency["p99_ms"], latency["count"])
        )

        # -- 5b. Query-planner statistics ------------------------------------
        # The registry serves every model with plan="validated": rewrites
        # from the committed benchmarks/REWRITE_PAIRS.json corpus (each
        # proven bit-identical against the unplanned path) apply on the
        # fly.  This conjunction touches disjoint children of noisy_or's
        # product root, so the planner factors it into two cheaper
        # single-scope queries — and because caches key on the semantic
        # event digest, the reordered second spelling is a cache hit, not
        # a re-evaluation.
        for spelling in (
            "disease_0 == 1 and disease_1 == 1",
            "disease_1 == 1 and disease_0 == 1",
        ):
            response = await client.query(
                {"model": "noisy_or", "kind": "logprob", "event": spelling}
            )
            print("  logprob(%s) = %.6f" % (spelling, value_of(response)))
        stats = await client.stats()
        noisy_or_stats = stats["backend"]["models"]["noisy_or"]
        plan = noisy_or_stats["plan"]
        factored = plan["passes"]["disjoint_factor"]
        print(
            "noisy_or planner: mode=%s corpus_pairs=%d disjoint_factor applied=%d"
            % (plan["mode"], plan["corpus_pairs"], factored["applied"])
        )
        print(
            "noisy_or result cache across spellings: %d hit / %d miss"
            % (noisy_or_stats["results"]["hits"], noisy_or_stats["results"]["misses"])
        )

        # -- 6. Dynamic model lifecycle: register on the live service --------
        # No restart needed: the serialized payload is shipped to every
        # worker shard, each shard acks the round-trip digest, and only
        # then does the name become queryable.
        from repro.workloads import hmm

        reply = await client.register_model("hmm3", payload=hmm.model(3).to_json())
        print("registered %r live (digest %s...)" % (reply["model"], reply["digest"][:12]))
        response = await client.query(
            {"model": "hmm3", "kind": "logprob", "event": "X[0] < 0.5"}
        )
        print("  logprob(X[0] < 0.5 | hmm3) = %.4f" % value_of(response))
        await client.unregister_model("hmm3")
        print("unregistered hmm3; serving: %s" % ", ".join(await client.models()))

        # -- 7. Register a compiled blob by path + digest --------------------
        # Compile once into a content-addressed <digest>.spz blob, then
        # register by path: the service verifies the embedded digest and
        # mmaps the file — with worker shards, every shard maps the same
        # physical pages instead of deserializing its own copy.
        from repro.spe import spe_digest

        blob_dir = Path(tmp) / "blobs"
        blob_dir.mkdir()
        model5 = hmm.model(5)
        digest = spe_digest(model5.spe)
        blob_path = blob_dir / (digest + ".spz")
        model5.compile(path=str(blob_path))
        reply = await client.register_model("hmm5", path=str(blob_path))
        print(
            "registered %r from blob %s... (digest-verified)"
            % (reply["model"], blob_path.name[:12])
        )
        response = await client.query(
            {"model": "hmm5", "kind": "logprob", "event": "X[0] < 0.5"}
        )
        print("  logprob(X[0] < 0.5 | hmm5) = %.4f" % value_of(response))

        # -- 8. End-to-end query tracing -------------------------------------
        # Every response line echoes a service-assigned trace id.  A
        # request opting in with "trace": true (or sampled in via
        # --trace-sample, or --slow-query-ms for outliers) additionally
        # builds a span tree — queue wait, micro-batch coalescing,
        # planner pass outcomes, cache hits, engine route — kept in the
        # flight-recorder ring and retrievable at GET /v1/trace/<id>.
        # This is the "why was this query slow?" artifact: here the cold
        # conjunction pays for planning + evaluation, visible span by
        # span.
        response = await client.query(
            {
                "model": "hmm20",
                "kind": "logprob",
                "event": "X[7] < 0.25 and X[11] < 0.5",
                "trace": True,
            }
        )
        trace = await client.trace(response["trace"])

        def show(span, depth=0):
            tags = span.get("tags", {})
            rendered = " ".join("%s=%s" % (key, tags[key]) for key in sorted(tags))
            print(
                "  %s%-28s %8.1f us  %s"
                % ("  " * depth, span["name"], span["dur_us"], rendered)
            )
            for child in span.get("children", ()):
                show(child, depth + 1)

        print(
            "trace %s (%s/%s, %.2f ms):"
            % (trace["trace_id"], trace["model"], trace["kind"], trace["duration_ms"])
        )
        show(trace["spans"])

        # -- 9. Streaming posterior sessions ---------------------------------
        # A session is a named, tenant-scoped condition chain: observe
        # extends it one event at a time (exact conditioning on the
        # current interned posterior, routed to a cache-warm shard via
        # session affinity), query verbs read the current posterior, and
        # the chain itself lives only in the front-end — a respawned
        # shard re-establishes it by deterministic replay, so answers
        # stay bit-identical across worker death.
        from repro.workloads import scenarios

        script = scenarios.hmm_sensor_fusion(5, seed=0)
        await client.create_session("fusion", "hmm5", tenant="acme")
        for event in script["observes"]:
            await client.observe("fusion", event, tenant="acme")
        for query in script["queries"][:2]:
            value = await client.session_logprob("fusion", query, tenant="acme")
            print("  logprob(%s | %d observes) = %.4f"
                  % (query, len(script["observes"]), value))
        # Commit-on-success: contradictory evidence is refused with 400
        # and the chain does not move — the session keeps answering.
        try:
            await client.observe("fusion", "X[0] > 1e9", tenant="acme")
        except Exception as error:
            print("  rejected observe (chain unchanged): %s" % error)
        described = await client.describe_session("fusion", tenant="acme")
        print(
            "session %r: %d observes committed, %d queries served"
            % (described["session"], described["observes"], described["queries"])
        )
        await client.delete_session("fusion", tenant="acme")
        await service.close()

        # -- 10. Multi-node serve: join a remote node into the ring ----------
        # A node is a separate process (normally a separate host) that
        # hosts shards over a framed TCP transport.  The front-end lists
        # it in `nodes` and it becomes one more ring member: the connect
        # handshake ships the model specs and verifies the digests the
        # node recomputes, exactly like a local worker's startup.
        import re
        import subprocess
        import sys

        node = subprocess.Popen(
            [sys.executable, "-m", "repro.serve.node", "--listen", "127.0.0.1:0"],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        )
        address = "127.0.0.1:%s" % (
            re.search(r":(\d+)", node.stdout.readline()).group(1),
        )
        registry = ModelRegistry()
        registry.register_catalog("hmm20")
        service = InferenceService(
            registry, workers=1, nodes=[address], window=0.002
        )
        host, port = await service.start()
        client = AsyncServeClient(host, port)
        responses = await client.query_many(burst, connections=8)
        print(
            "1 local shard + node %s answered %d queries (first three: %s)"
            % (address, len(burst), [round(value_of(r), 4) for r in responses[:3]])
        )
        backend = (await client.stats())["backend"]
        for entry in backend["nodes"]:
            print(
                "  node %s (%s): shards %s, live=%s"
                % (entry["address"], entry["kind"],
                   [shard["shard"] for shard in entry["shards"]], entry["live"])
            )
        await service.close()
        node.terminate()
        node.wait(10)


if __name__ == "__main__":
    asyncio.run(main())
