"""Persistent query cache and batched surfaces (hash-consing PR).

Measures the three workloads the persistent :class:`~repro.spe.QueryCache`
and the batched/vectorized entry points were built for:

* repeated exact queries against one model (cache turns re-traversals into
  dictionary lookups),
* the ``constrain -> query-per-step`` posterior chain of the hierarchical
  HMM (posterior models share the prior's cache),
* bulk sampling via the vectorized columnar path (one numpy/scipy draw per
  visited leaf instead of ``n`` scalar traversals).

Each test also cross-checks the cached answers against a cache-disabled
model, so the speedups cannot silently change semantics.
"""

import numpy as np
import pytest

from repro.compiler import compile_command
from repro.engine import SpplModel
from repro.transforms import Id
from repro.workloads import hmm
from repro.workloads import table1_models

from .conftest import bench_scale
from .conftest import write_results

_ROWS = []


def test_repeated_queries_hit_cache(benchmark):
    model = SpplModel(compile_command(table1_models.heart_disease()))
    baseline = SpplModel(model.spe, cache=False)
    query = Id("heart_disease") == 1
    model.logprob(query)  # warm

    result = benchmark(lambda: model.logprob(query))
    assert result == baseline.logprob(query)
    stats = model.cache_stats()
    assert stats["hits"] > 0
    _ROWS.append(("repeated logprob (heart disease)", stats["hits"], stats["misses"]))


def test_posterior_chain_reuses_cache(benchmark):
    n_step = max(5, int(round(10 * bench_scale())))
    data = hmm.simulate_data(n_step, seed=0)
    model = hmm.model(n_step)
    assignment = hmm.observation_assignment(data["x"], data["y"])

    def chain():
        posterior = model.constrain(assignment)
        return [posterior.prob(Id(hmm.z(t)) == 1) for t in range(n_step)]

    first = chain()  # cold pass fills the cache
    repeated = benchmark(chain)
    assert repeated == pytest.approx(first)

    uncached = SpplModel(model.spe, cache=False)
    oracle_posterior = uncached.constrain(assignment)
    oracle = [oracle_posterior.prob(Id(hmm.z(t)) == 1) for t in range(n_step)]
    assert repeated == pytest.approx(oracle)
    _ROWS.append(("posterior chain (HMM %d steps)" % n_step, len(first), 0))


def test_bulk_sampling_is_vectorized(benchmark):
    n = max(1000, int(round(10_000 * bench_scale())))
    model = hmm.model(10)

    columns = benchmark(lambda: model.sample_columns(n, seed=0))
    assert len(columns) == len(model.variables)
    frequency = float(np.mean(columns[hmm.z(9)] == 1))
    exact = model.prob(Id(hmm.z(9)) == 1)
    assert frequency == pytest.approx(exact, abs=0.05)
    _ROWS.append(("bulk sampling (HMM 10 steps, n=%d)" % n, n, 0))

    if len(_ROWS) == 3:
        lines = ["workload | quantity | extra"]
        for row in _ROWS:
            lines.append("%s | %s | %s" % row)
        write_results("query_cache", lines)
