"""``repro.obs``: tracing and metrics threaded through every layer.

Three pieces, designed to cost nothing when unused:

* :mod:`repro.obs.trace` — :class:`Trace`/:class:`Span` trees on the
  monotonic clock, propagated through the asyncio front-end by a
  ``contextvars.ContextVar`` and carried into worker shards as plain
  dict fragments over the wire.  The module-level helpers
  (:func:`span`, :func:`event`, :func:`bump`) are the hot-path surface:
  one context-variable read and a ``None`` check when tracing is off.
* :mod:`repro.obs.metrics` — the central :class:`MetricsRegistry` that
  the serve stack's formerly ad-hoc counters migrated into (stable
  dotted names), rendered both into the ``/v1/stats`` JSON and as
  Prometheus text exposition on ``GET /metrics``.
* :mod:`repro.obs.recorder` — the :class:`FlightRecorder` ring of
  completed traces behind ``GET /v1/trace/<id>`` and the structured
  slow-query log.

Import discipline: this package imports nothing from ``repro.engine``,
``repro.plan``, ``repro.spe``, or ``repro.serve`` (those layers all
import *it*), so it sits at the bottom of the dependency graph next to
the stdlib.
"""

from .metrics import Counter
from .metrics import Gauge
from .metrics import MetricsRegistry
from .recorder import FlightRecorder
from .trace import Span
from .trace import Trace
from .trace import activate
from .trace import bump
from .trace import current
from .trace import event
from .trace import new_trace_id
from .trace import span

__all__ = [
    "Counter",
    "FlightRecorder",
    "Gauge",
    "MetricsRegistry",
    "Span",
    "Trace",
    "activate",
    "bump",
    "current",
    "event",
    "new_trace_id",
    "span",
]
