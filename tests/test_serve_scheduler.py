"""Micro-batching scheduler tests: coalescing, windows, pinning, fallback."""

import asyncio
import math

import pytest

from repro.serve import MicroBatcher
from repro.serve import wire
from repro.serve.scheduler import ResultCache
from repro.serve.scheduler import evaluate_batch
from repro.serve.wire import Request
from repro.spe import ZeroProbabilityError
from repro.workloads import indian_gpa


def run(coroutine):
    return asyncio.run(coroutine)


def logprob_request(event, model="m", condition=None, no_batch=False):
    return Request(None, model, "logprob", event, condition, no_batch)


class FakeBackend:
    """Records batches; answers each payload with its own text."""

    def __init__(self, n_shards=1, fail=False):
        self.n_shards = n_shards
        self.batches = []
        self.fail = fail
        self._rr = 0

    def route(self, model, condition):
        if condition is not None:
            return hash((model, condition)) % self.n_shards
        self._rr = (self._rr + 1) % self.n_shards
        return self._rr

    async def run_batch(self, model, kind, condition, shard, payloads):
        self.batches.append((model, kind, condition, shard, list(payloads)))
        if self.fail:
            raise RuntimeError("backend down")
        return [wire.ok(payload) for payload in payloads]


class TestCoalescing:
    def test_concurrent_requests_coalesce_into_one_batch(self):
        backend = FakeBackend()
        batcher = MicroBatcher(backend, window=0.005, max_batch=64)

        async def main():
            return await asyncio.gather(
                *[batcher.submit(logprob_request("e%d" % i)) for i in range(10)]
            )

        results = run(main())
        assert [result[1] for result in results] == ["e%d" % i for i in range(10)]
        assert len(backend.batches) == 1
        assert batcher.stats()["largest_batch"] == 10

    def test_distinct_keys_get_distinct_batches(self):
        backend = FakeBackend()
        batcher = MicroBatcher(backend, window=0.005)

        async def main():
            return await asyncio.gather(
                batcher.submit(logprob_request("a", model="m1")),
                batcher.submit(logprob_request("b", model="m2")),
                batcher.submit(logprob_request("c", model="m1", condition="C")),
            )

        run(main())
        keys = {(model, condition) for model, _, condition, _, _ in backend.batches}
        assert keys == {("m1", None), ("m2", None), ("m1", "C")}

    def test_max_batch_flushes_early(self):
        backend = FakeBackend()
        batcher = MicroBatcher(backend, window=10.0, max_batch=4)

        async def main():
            # A 10-second window would stall the test if max_batch did
            # not force the flush.
            return await asyncio.wait_for(
                asyncio.gather(
                    *[batcher.submit(logprob_request("e%d" % i)) for i in range(8)]
                ),
                timeout=5,
            )

        results = run(main())
        assert len(results) == 8
        assert len(backend.batches) == 2
        assert all(len(payloads) == 4 for *_, payloads in backend.batches)

    def test_no_batch_bypasses_window(self):
        backend = FakeBackend()
        batcher = MicroBatcher(backend, window=10.0)

        async def main():
            return await asyncio.wait_for(
                batcher.submit(logprob_request("solo", no_batch=True)), timeout=5
            )

        assert run(main()) == ("ok", "solo")
        assert batcher.stats()["no_batch_requests"] == 1

    def test_zero_window_still_coalesces_same_iteration(self):
        backend = FakeBackend()
        batcher = MicroBatcher(backend, window=0.0)

        async def main():
            return await asyncio.gather(
                *[batcher.submit(logprob_request("e%d" % i)) for i in range(5)]
            )

        run(main())
        assert len(backend.batches) == 1

    def test_backend_failure_errors_every_request(self):
        backend = FakeBackend(fail=True)
        batcher = MicroBatcher(backend, window=0.0)

        async def main():
            return await asyncio.gather(
                *[batcher.submit(logprob_request("e%d" % i)) for i in range(3)]
            )

        results = run(main())
        assert all(result[0] == "error" for result in results)
        assert all(result[1] == "RuntimeError" for result in results)

    def test_sharded_conditions_stick_round_robin_spreads(self):
        backend = FakeBackend(n_shards=4)
        batcher = MicroBatcher(backend, window=0.0)

        async def main():
            conditioned = [
                batcher.submit(logprob_request("e%d" % i, condition="C"))
                for i in range(8)
            ]
            plain = [batcher.submit(logprob_request("p%d" % i)) for i in range(8)]
            await asyncio.gather(*conditioned, *plain)

        run(main())
        conditioned_shards = {
            shard for _, _, condition, shard, _ in backend.batches if condition
        }
        plain_shards = {
            shard for _, _, condition, shard, _ in backend.batches if not condition
        }
        assert len(conditioned_shards) == 1  # cache affinity
        assert len(plain_shards) == 4  # load spreading

    def test_validation(self):
        with pytest.raises(ValueError):
            MicroBatcher(FakeBackend(), max_batch=0)
        with pytest.raises(ValueError):
            MicroBatcher(FakeBackend(), window=-1)


class TestEvaluateBatch:
    def setup_method(self):
        self.model = indian_gpa.model()

    def test_logprob_batch_matches_direct(self):
        events = ["GPA > %r" % (0.5 * i) for i in range(8)]
        results = evaluate_batch(self.model, "logprob", None, events)
        assert [r[1] for r in results] == [self.model.logprob(e) for e in events]

    def test_prob_exponentiates(self):
        (result,) = evaluate_batch(self.model, "prob", None, ["GPA > 3"])
        assert result == ("ok", self.model.prob("GPA > 3"))

    def test_logpdf(self):
        (result,) = evaluate_batch(self.model, "logpdf", None, [{"GPA": 2.5}])
        assert result == ("ok", self.model.logpdf({"GPA": 2.5}))

    def test_conditioned_batch(self):
        (result,) = evaluate_batch(
            self.model, "logprob", "Nationality == 'India'", ["GPA > 9"]
        )
        posterior = self.model.condition("Nationality == 'India'")
        assert result == ("ok", posterior.logprob("GPA > 9"))

    def test_zero_probability_condition_fails_whole_batch(self):
        results = evaluate_batch(
            self.model, "logprob", "GPA > 99", ["GPA > 1", "GPA > 2"]
        )
        assert [r[:2] for r in results] == [("error", "ZeroProbabilityError")] * 2

    def test_bad_event_isolated_from_batch_mates(self):
        results = evaluate_batch(
            self.model, "logprob", None, ["GPA > 1", "NoSuchVar > 0", "GPA > 2"]
        )
        assert results[0] == ("ok", self.model.logprob("GPA > 1"))
        assert results[1][0] == "error"
        assert results[2] == ("ok", self.model.logprob("GPA > 2"))

    def test_sample_respects_seed(self):
        results = evaluate_batch(
            self.model, "sample", None, [{"n": 3, "seed": 7}, {"n": 3, "seed": 7}]
        )
        assert results[0] == results[1]
        assert len(results[0][1]) == 3

    def test_unknown_kind(self):
        (result,) = evaluate_batch(self.model, "wat", None, ["x"])
        assert result[0] == "error"


class TestResultCache:
    def test_fills_and_replays(self):
        model = indian_gpa.model()
        cache = ResultCache()
        events = ["GPA > 1", "GPA > 2"]
        first = evaluate_batch(model, "logprob", None, events, cache)
        again = evaluate_batch(model, "logprob", None, events, cache)
        assert first == again
        stats = cache.stats()
        assert stats["entries"] == 2
        assert stats["hits"] == 2
        assert stats["misses"] == 2

    def test_hit_miss_counts(self):
        model = indian_gpa.model()
        cache = ResultCache()
        evaluate_batch(model, "logprob", None, ["GPA > 1"], cache)
        evaluate_batch(model, "logprob", None, ["GPA > 1"], cache)
        assert cache.stats()["misses"] == 1
        assert cache.stats()["hits"] == 1

    def test_errors_not_cached(self):
        model = indian_gpa.model()
        cache = ResultCache()
        evaluate_batch(model, "logprob", None, ["NoVar > 1"], cache)
        assert cache.stats()["entries"] == 0

    def test_sample_never_cached(self):
        model = indian_gpa.model()
        cache = ResultCache()
        evaluate_batch(model, "sample", None, [{"n": 2, "seed": None}], cache)
        assert cache.stats()["entries"] == 0

    def test_bound_evicts_lru(self):
        cache = ResultCache(max_entries=2)
        for i in range(4):
            cache.put(("logprob", None, "e%d" % i), wire.ok(float(i)))
        assert cache.stats()["entries"] == 2
        assert cache.get(("logprob", None, "e3")) == ("ok", 3.0)
        assert cache.get(("logprob", None, "e0")) is None

    def test_condition_part_of_key(self):
        cache = ResultCache()
        cache.put(ResultCache.key("logprob", "C", "e"), wire.ok(1.0))
        assert cache.get(ResultCache.key("logprob", None, "e")) is None

    def test_non_finite_values_survive_the_cache(self):
        model = indian_gpa.model()
        cache = ResultCache()
        (first,) = evaluate_batch(model, "logprob", None, ["GPA > 99"], cache)
        (again,) = evaluate_batch(model, "logprob", None, ["GPA > 99"], cache)
        assert first == again == ("ok", -math.inf)


class TestZeroProbabilityErrorType:
    def test_is_value_error(self):
        assert issubclass(ZeroProbabilityError, ValueError)
