"""Figure 8: rare-event probabilities — exact SPPL vs rejection sampling.

For each of the four rare events, measures the time SPPL needs to compute
the exact probability and records the convergence trajectory of the
rejection-sampling estimator (the BLOG substitute).  The expected shape is
that SPPL returns the exact value in milliseconds while the sampler's
estimate is still far from converged after many orders of magnitude more
work (most trajectories for the rarest events remain at zero).
"""

import math

import pytest

from repro.baselines import RejectionSampler
from repro.workloads import rare_events

from .conftest import bench_scale
from .conftest import write_results

_EVENTS = rare_events.rare_events()
_ROWS = {}


def _sampler_budget() -> int:
    return max(4000, int(40000 * bench_scale()))


@pytest.mark.parametrize("label,event", _EVENTS, ids=[label for label, _ in _EVENTS])
def test_fig8_rare_event(benchmark, label, event):
    model = rare_events.model()

    log_probability = benchmark(lambda: model.logprob(event))
    assert log_probability < -5

    sampler = RejectionSampler(rare_events.program(), seed=0)
    budget = _sampler_budget()
    trajectory = sampler.estimate_trajectory(
        event, batch_size=budget // 4, n_batches=4
    )
    final = trajectory[-1]

    _ROWS[label] = (log_probability, final["estimate"], final["samples"], final["elapsed"])

    if len(_ROWS) == len(_EVENTS):
        lines = [
            "event | exact log prob | sampler estimate | sampler samples | sampler sec"
        ]
        for event_label, _ in _EVENTS:
            lp, estimate, samples, elapsed = _ROWS[event_label]
            estimate_log = math.log(estimate) if estimate > 0 else float("-inf")
            lines.append(
                "%s | %.2f | %s | %d | %.2f"
                % (
                    event_label,
                    lp,
                    "log %.2f" % (estimate_log,) if estimate > 0 else "0 (no hits)",
                    int(samples),
                    elapsed,
                )
            )
        write_results("fig8_rare_events", lines)
