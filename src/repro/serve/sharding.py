"""Sharded worker pool: N processes, each with its own SPE copy and cache.

Each worker process deserializes every registered model from the
registry's canonical JSON payload (the structural-key serializer of
:mod:`repro.spe.serialize`) and verifies **round-trip fidelity** by
recomputing :func:`repro.spe.spe_digest` over the rebuilt graph -- a
worker whose copy is not bit-identical to the parent's refuses to start.
Every shard then owns a private :class:`~repro.spe.QueryCache` with the
model's budget.

Routing:

* **conditioned** queries are routed by a consistent hash of
  ``model|condition``, so a chain of queries against one posterior always
  lands on the shard whose cache already holds that posterior's traversal
  results (cache-warm posterior chains), and adding/removing shards only
  remaps ``1/n`` of the key space;
* **unconditioned** queries have no cache affinity and are spread
  round-robin so one hot model saturates every shard.

The parent talks to each worker over a ``multiprocessing`` pipe with a
strict request/response discipline (one in-flight batch per shard,
enforced by an asyncio lock), so no message-id matching is needed;
blocking pipe reads run on executor threads, keeping the event loop free.
Workers use the ``spawn`` start method: no forked locks, no inherited
asyncio state, and the child imports :mod:`repro` fresh -- exactly what a
cross-machine deployment would do.

Supervision: a shard that dies (process exit, OOM kill, pipe failure) is
detected by the failing pipe operation, **respawned** from the pool's
current model specs -- the fresh process re-runs the digest-ack handshake
for every registered model before it is trusted -- and the message that
was in flight on the dead shard is **resent** to the replacement.  Exact
inference is deterministic and side-effect-free, so re-running a batch is
always safe; callers observe extra latency (one interpreter start), never
errors.  ``respawns`` and ``requeued_batches`` count the recoveries and
surface on ``/v1/stats``.  A batch that kills its worker repeatedly
(:data:`MAX_RESPAWNS_PER_CALL` times) is failed rather than retried
forever -- a poison request must not wedge the shard in a crash loop.
"""

from __future__ import annotations

import asyncio
import bisect
import hashlib
import multiprocessing
from concurrent.futures import ThreadPoolExecutor
from typing import Dict
from typing import List
from typing import Optional
from typing import Sequence

from .. import obs
from ..obs import MetricsRegistry
from ..obs import Trace
from . import wire
from .wire import Result


class WorkerError(RuntimeError):
    """A worker failed to start, verify its models, or answer a batch."""


# ---------------------------------------------------------------------------
# Consistent-hash ring.
# ---------------------------------------------------------------------------

class HashRing:
    """Consistent hashing of string keys onto shard indices.

    Each shard contributes ``replicas`` virtual points on a 64-bit ring
    (SHA-1 positions), and a key routes to the first point clockwise from
    its own hash.  With the default 64 replicas the load split across a
    handful of shards is within a few percent of uniform, and removing a
    shard remaps only the keys that pointed at it.
    """

    def __init__(self, n_shards: int, replicas: int = 64):
        if n_shards < 1:
            raise ValueError("HashRing needs at least one shard.")
        self.n_shards = n_shards
        points = []
        for shard in range(n_shards):
            for replica in range(replicas):
                points.append((self._position("shard-%d/%d" % (shard, replica)), shard))
        points.sort()
        self._positions = [position for position, _ in points]
        self._shards = [shard for _, shard in points]

    @staticmethod
    def _position(key: str) -> int:
        return int.from_bytes(
            hashlib.sha1(key.encode("utf-8")).digest()[:8], "big"
        )

    def route(self, key: str) -> int:
        """The shard index owning ``key``."""
        index = bisect.bisect_right(self._positions, self._position(key))
        if index == len(self._positions):
            index = 0
        return self._shards[index]


# ---------------------------------------------------------------------------
# Worker process.
# ---------------------------------------------------------------------------

def _load_model_spec(name: str, spec: Dict):
    """Build one worker-side model from its spec; returns (model, digest).

    ``path`` specs mmap the content-addressed compiled ``.spz`` blob
    read-only — every shard on the host shares one physical copy of the
    tables — and ``repro.spe.load_spz`` verifies both the payload hash
    and the round-trip digest of the rebuilt graph before the model is
    trusted.  ``payload`` specs deserialize the shipped JSON and prove
    round-trip fidelity by recomputing the structural digest.
    """
    from ..engine import SpplModel
    from ..spe import spe_digest
    from ..spe import spe_from_json

    path = spec.get("path")
    plan = spec.get("plan", "off")  # pre-planner specs default to off
    if path is not None:
        model = SpplModel.from_spz(
            path, cache_size=spec["cache_size"], expected_digest=spec["digest"],
            plan=plan,
        )
        return model, spec["digest"]
    spe = spe_from_json(spec["payload"])
    digest = spe_digest(spe)
    if digest != spec["digest"]:
        raise WorkerError(
            "Round-trip digest mismatch for model %r: parent %s, "
            "worker %s." % (name, spec["digest"], digest)
        )
    return SpplModel(spe, cache_size=spec["cache_size"], plan=plan), digest


def _worker_main(worker_id: int, model_specs: Dict[str, Dict], conn) -> None:
    """Entry point of one worker process (spawn-safe, module level).

    Loads every model (mmap'd blob or deserialized payload, digest
    verified either way), then answers batch/stats/clear messages until
    told to stop.  All replies are plain picklable values.
    """
    from ..engine import SpplModel
    from .scheduler import ResultCache
    from .scheduler import evaluate_batch

    models: Dict[str, SpplModel] = {}
    result_caches: Dict[str, ResultCache] = {}
    digests: Dict[str, str] = {}
    try:
        for name, spec in model_specs.items():
            model, digest = _load_model_spec(name, spec)
            models[name] = model
            result_caches[name] = ResultCache()
            digests[name] = digest
    except BaseException as error:
        conn.send(("init_error", "%s: %s" % (type(error).__name__, error)))
        conn.close()
        return
    conn.send(("ready", dict(digests)))

    while True:
        try:
            message = conn.recv()
        except EOFError:
            break
        op = message[0]
        if op == "stop":
            conn.send(("stopped", worker_id))
            break
        if op == "batch":
            # 5-tuple: the pre-tracing wire shape (and the zero-overhead
            # path for untraced batches).  6-tuple: a trailing trace flag;
            # the worker then builds its own span fragment — clocks and
            # objects do not cross the pipe — and ships it back beside
            # the results for the parent to graft under its dispatch
            # span.
            name, kind, condition, payloads = message[1:5]
            traced = len(message) > 5 and bool(message[5])
            tracer = (
                Trace(name="worker.batch", tags={"worker": worker_id})
                if traced
                else None
            )
            model = models.get(name)
            if model is None:
                results = wire.error_results(
                    WorkerError("Worker %d has no model %r." % (worker_id, name)),
                    len(payloads),
                )
            else:
                results = evaluate_batch(
                    model, kind, condition, payloads, result_caches.get(name),
                    tracer,
                )
            if tracer is not None:
                conn.send(("results", (results, tracer.to_payload())))
            else:
                conn.send(("results", results))
        elif op == "stats":
            stats = {}
            for name, model in sorted(models.items()):
                stats[name] = model.cache_stats()
                stats[name]["results"] = result_caches[name].stats()
                compiled = model.compiled_info()
                if compiled is not None:
                    stats[name]["compiled"] = compiled
            conn.send(("stats", stats))
        elif op == "clear":
            for name, model in models.items():
                # everything=True: scoped clearing would keep entries
                # keyed on posterior-subgraph uids alive, and each worker
                # owns its caches exclusively.  The parsed-event LRU goes
                # too: a clear forces full recomputation.
                model.clear_cache(everything=True)
                model.clear_event_cache()
                result_caches[name].clear()
            conn.send(("cleared", worker_id))
        elif op == "register":
            # Live model reload: deserialize the shipped payload, prove
            # round-trip fidelity, and ack with the recomputed digest (the
            # parent refuses the registration unless every shard's ack
            # matches).
            _, name, spec = message
            try:
                if name in models:
                    # Idempotent re-register: a respawned worker is
                    # re-seeded from the pool's current specs, so a
                    # retried register handshake may find the model
                    # already loaded.  Ack it when the digest matches;
                    # a *different* digest under the same name is a
                    # genuine conflict.
                    if digests.get(name) == spec["digest"]:
                        conn.send(("registered", digests[name]))
                        continue
                    raise WorkerError(
                        "Worker %d already has model %r (digest %s != %s)."
                        % (worker_id, name, digests.get(name), spec["digest"])
                    )
                model, digest = _load_model_spec(name, spec)
                models[name] = model
                result_caches[name] = ResultCache()
                digests[name] = digest
            except Exception as error:
                conn.send(("error", "%s: %s" % (type(error).__name__, error)))
            else:
                conn.send(("registered", digest))
        elif op == "unregister":
            _, name = message
            models.pop(name, None)
            result_caches.pop(name, None)
            digests.pop(name, None)
            conn.send(("unregistered", name))
        else:
            conn.send(("error", "Unknown worker op %r." % (op,)))
    conn.close()


class _Worker:
    __slots__ = ("process", "conn", "lock")

    def __init__(self, process, conn):
        self.process = process
        self.conn = conn
        self.lock = asyncio.Lock()


#: How many times one message may trigger a respawn-and-resend before the
#: pool gives up and fails it: a batch that crashes its worker every time
#: it runs (a poison request) must not wedge the shard in a crash loop.
MAX_RESPAWNS_PER_CALL = 2


class WorkerPool:
    """N worker processes, each holding deserialized copies of every model.

    The pool supervises its workers: a shard whose process dies is
    respawned from the current model specs (digest handshake included)
    and the in-flight message is resent, so transient worker deaths cost
    callers latency, not errors.
    """

    def __init__(self, n_workers: int, start_method: str = "spawn",
                 metrics: Optional[MetricsRegistry] = None):
        if n_workers < 1:
            raise ValueError("WorkerPool needs at least one worker.")
        self.n_workers = n_workers
        self._context = multiprocessing.get_context(start_method)
        self._workers: List[_Worker] = []
        # One thread per worker: a blocking pipe read never starves
        # another shard's reply.
        self._executor = ThreadPoolExecutor(
            max_workers=n_workers, thread_name_prefix="repro-serve-worker-io"
        )
        #: Current model specs (name -> payload/digest/cache_size); the
        #: seed a respawned worker is rebuilt from.  Kept in sync by
        #: :meth:`start`/:meth:`register_model`/:meth:`unregister_model`.
        self._specs: Dict[str, Dict] = {}
        self._start_timeout = 120.0
        self._closing = False
        # Supervision counters (event-loop-only mutation), surfaced on
        # ``/v1/stats`` via :meth:`WorkerPoolBackend.stats` and on
        # ``/metrics``; the old plain-int attributes stay readable
        # through the property shims below.
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._respawns = self.metrics.counter("repro.pool.respawns")
        self._requeued = self.metrics.counter("repro.pool.requeued_batches")

    @property
    def respawns(self) -> int:
        return self._respawns.value

    @property
    def requeued_batches(self) -> int:
        return self._requeued.value

    def _note_respawn(self, shard: int, attempt: int, is_batch: bool) -> None:
        """Count one respawn (and its requeue) in a single synchronous step.

        Both counters move before the respawn's first ``await``, so no
        stats snapshot — which reads loop-owned counters without awaiting
        — can ever observe ``requeued_batches > respawns`` or a respawn
        whose requeue has not landed yet.
        """
        self._respawns.inc()
        obs.event("shard.respawn", shard=shard, attempt=attempt)
        if is_batch:
            self._requeued.inc()
            obs.event("batch.requeue", shard=shard, attempt=attempt)

    def worker_pids(self) -> List[int]:
        """Live worker process ids (fault-injection hook for chaos tests)."""
        return [worker.process.pid for worker in self._workers]

    def _launch(self, worker_id: int, specs: Dict[str, Dict]):
        """Spawn one worker process; returns ``(process, parent_conn)``."""
        parent_conn, child_conn = self._context.Pipe()
        process = self._context.Process(
            target=_worker_main,
            args=(worker_id, specs, child_conn),
            name="repro-serve-worker-%d" % (worker_id,),
            daemon=True,
        )
        process.start()
        child_conn.close()
        return process, parent_conn

    @staticmethod
    def _await_ready(worker_id, process, conn, specs, timeout) -> None:
        """Block until the worker acks readiness with the expected digests.

        The ready reply carries the digest the worker recomputed over
        every deserialized model; any mismatch with the parent's specs
        (or a death/timeout before the ack) raises :class:`WorkerError`.
        """
        if not conn.poll(timeout):
            raise WorkerError("Worker %d did not start in time." % (worker_id,))
        try:
            reply = conn.recv()
        except EOFError:
            raise WorkerError(
                "Worker %d died before reporting ready." % (worker_id,)
            ) from None
        if reply[0] != "ready":
            raise WorkerError(
                "Worker %d failed to start: %s" % (worker_id, reply[1])
            )
        expected = {name: spec["digest"] for name, spec in specs.items()}
        if reply[1] != expected:
            raise WorkerError(
                "Worker %d handshake digests %r do not match the parent's %r."
                % (worker_id, reply[1], expected)
            )

    def start(self, model_specs: Dict[str, Dict], timeout: float = 120.0) -> None:
        """Spawn the workers and wait until every one verified its models.

        ``model_specs`` maps model name to ``{"payload": json_str,
        "digest": str, "cache_size": int|None}`` (see
        :meth:`InferenceService.worker_specs`).  Blocking -- call before
        serving (or from an executor thread).
        """
        self._specs = {name: dict(spec) for name, spec in model_specs.items()}
        self._start_timeout = timeout
        for worker_id in range(self.n_workers):
            process, parent_conn = self._launch(worker_id, self._specs)
            self._workers.append(_Worker(process, parent_conn))
        for worker_id, worker in enumerate(self._workers):
            try:
                self._await_ready(
                    worker_id, worker.process, worker.conn, self._specs, timeout
                )
            except WorkerError:
                # Don't leave the siblings running (e.g. one worker
                # OOM-killed while deserializing).
                self.terminate()
                raise

    async def _respawn(self, shard: int, worker: _Worker) -> None:
        """Replace a dead shard's process (caller holds the shard lock).

        The replacement is seeded from the pool's *current* specs and
        must pass the same digest-ack handshake a startup worker does
        before the shard is trusted again.  The caller has already
        counted the respawn (:meth:`_note_respawn`).
        """
        specs = {name: dict(spec) for name, spec in self._specs.items()}
        loop = asyncio.get_running_loop()

        def blocking():
            try:
                worker.conn.close()
            except OSError:
                pass
            if worker.process.is_alive():
                worker.process.terminate()
            worker.process.join(5)
            process, conn = self._launch(shard, specs)
            try:
                self._await_ready(shard, process, conn, specs, self._start_timeout)
            except BaseException:
                if process.is_alive():
                    process.terminate()
                conn.close()
                raise
            return process, conn

        worker.process, worker.conn = await loop.run_in_executor(
            self._executor, blocking
        )

    async def _call(self, shard: int, message: tuple):
        """One request/response round trip with a shard (serialized per shard).

        A pipe failure (the worker died) triggers a respawn and a resend
        of ``message`` -- safe because every worker op is deterministic
        and idempotent -- bounded by :data:`MAX_RESPAWNS_PER_CALL`.
        """
        worker = self._workers[shard]
        loop = asyncio.get_running_loop()
        async with worker.lock:
            attempts = 0
            while True:
                try:
                    worker.conn.send(message)
                    reply = await loop.run_in_executor(
                        self._executor, worker.conn.recv
                    )
                    break
                except (OSError, EOFError) as error:
                    if self._closing:
                        raise WorkerError(
                            "Shard %d unavailable during shutdown: %s"
                            % (shard, error)
                        ) from error
                    attempts += 1
                    if attempts > MAX_RESPAWNS_PER_CALL:
                        raise WorkerError(
                            "Shard %d died %d times answering one %r message; "
                            "giving up on it (poison request?)."
                            % (shard, attempts, message[0])
                        ) from error
                    self._note_respawn(shard, attempts, message[0] == "batch")
                    await self._respawn(shard, worker)
        if reply[0] == "error":
            raise WorkerError(reply[1])
        return reply[1]

    async def run_batch(
        self, shard: int, model: str, kind: str, condition: Optional[str],
        payloads: Sequence, trace: bool = False,
    ):
        """Run one batch on a shard.

        Untraced calls keep the pre-tracing 5-tuple wire message and
        return the result list; with ``trace=True`` a flag is appended
        and the worker returns ``(results, span_payload)``.
        """
        message = ("batch", model, kind, condition, list(payloads))
        if trace:
            message = message + (True,)
        return await self._call(shard, message)

    async def shard_stats(self) -> List[Dict]:
        return [
            await self._call(shard, ("stats",)) for shard in range(self.n_workers)
        ]

    async def register_model(self, name: str, spec: Dict) -> None:
        """Ship a serialized model to every shard; all-or-nothing.

        Each shard deserializes the payload and acks with the digest it
        recomputed over the rebuilt graph.  Any failed shard — or any ack
        that does not match the parent's digest — rolls the registration
        back on every shard (idempotent for shards that never saw the
        model) and raises :class:`WorkerError`: either every shard holds
        a bit-identical copy, or none does.  The handshake is
        deliberately sequential (registration is rare); parallelizing it
        would shorten the lifecycle lock's hold time on wide pools at
        the cost of a racier rollback.
        """
        # Publish the spec to the supervisor *before* the handshake: a
        # shard that dies mid-handshake respawns with the model already
        # seeded, and the retried register op acks idempotently.
        self._specs[name] = dict(spec)
        try:
            for shard in range(self.n_workers):
                digest = await self._call(shard, ("register", name, spec))
                # The worker stored the model before replying; a
                # worker-side mismatch raises before storing, so this
                # parent-side check is defense in depth.
                if digest != spec["digest"]:
                    raise WorkerError(
                        "Shard %d acked digest %s for model %r, expected %s."
                        % (shard, digest, name, spec["digest"])
                    )
        except Exception:
            self._specs.pop(name, None)
            # Roll back over *every* shard, not just the acked prefix: a
            # shard that was respawned mid-handshake (serving a batch)
            # was seeded with the pending spec without ever acking, and
            # worker-side unregister is an idempotent no-op for shards
            # that never saw the model.
            for shard in range(self.n_workers):
                try:
                    await self._call(shard, ("unregister", name))
                except (WorkerError, OSError, EOFError):
                    pass  # roll back best-effort; the original error wins
            raise

    async def unregister_model(self, name: str) -> None:
        """Drop a model (and its caches) from every shard."""
        # Out of the respawn seed first: a shard respawned mid-teardown
        # must not resurrect the model.
        self._specs.pop(name, None)
        for shard in range(self.n_workers):
            await self._call(shard, ("unregister", name))

    async def clear_caches(self) -> None:
        for shard in range(self.n_workers):
            await self._call(shard, ("clear",))

    def terminate(self) -> None:
        """Hard-kill every worker (used on failed startup and as a fallback)."""
        self._closing = True
        for worker in self._workers:
            if worker.process.is_alive():
                worker.process.terminate()
            worker.conn.close()
        for worker in self._workers:
            worker.process.join(timeout=5)
        self._executor.shutdown(wait=False)

    async def close(self) -> None:
        """Graceful shutdown: stop message, join, then terminate stragglers."""
        self._closing = True
        loop = asyncio.get_running_loop()
        for worker in self._workers:
            try:
                async with worker.lock:
                    worker.conn.send(("stop",))
                    await loop.run_in_executor(self._executor, worker.conn.recv)
            except (OSError, EOFError, WorkerError):
                pass
        for worker in self._workers:
            await loop.run_in_executor(None, worker.process.join, 10)
        self.terminate()


class WorkerPoolBackend:
    """Scheduler backend dispatching batches to a :class:`WorkerPool`."""

    def __init__(self, pool: WorkerPool):
        self.pool = pool
        self.n_shards = pool.n_workers
        self._ring = HashRing(pool.n_workers)
        self._round_robin = 0

    def route(self, model: str, condition: Optional[str]) -> int:
        if condition is not None:
            # Cache affinity: one posterior chain -> one shard.
            return self._ring.route("%s|%s" % (model, condition))
        self._round_robin = (self._round_robin + 1) % self.n_shards
        return self._round_robin

    async def run_batch(
        self, model: str, kind: str, condition: Optional[str], shard: int,
        payloads: Sequence,
    ) -> List[Result]:
        tracer = obs.current()
        if tracer is None:
            return await self.pool.run_batch(shard, model, kind, condition, payloads)
        with tracer.span("shard.dispatch", shard=shard):
            results, spans = await self.pool.run_batch(
                shard, model, kind, condition, payloads, trace=True
            )
            if spans:
                tracer.graft(spans)
        return results

    def stats_sync(self) -> Dict:
        """Loop-owned supervision counters, read without awaiting."""
        return {
            "mode": "sharded",
            "workers": self.n_shards,
            "respawns": self.pool.respawns,
            "requeued_batches": self.pool.requeued_batches,
        }

    async def stats(self) -> Dict:
        stats = self.stats_sync()
        stats["shards"] = await self.pool.shard_stats()
        return stats

    async def register_model(self, name: str, registered) -> None:
        """All-shard digest-ack registration (see :meth:`WorkerPool.register_model`)."""
        await self.pool.register_model(name, wire.model_spec(registered))

    async def unregister_model(self, name: str) -> None:
        await self.pool.unregister_model(name)

    async def clear_caches(self) -> None:
        await self.pool.clear_caches()

    async def close(self) -> None:
        await self.pool.close()
