"""Table 4: per-stage runtime of SPPL vs the single-stage exact baseline.

For each of the eight PSI-comparison benchmarks the harness measures the
three SPPL stages (translation, per-dataset conditioning, per-dataset
querying) and the total per-dataset runtime of the single-stage
path-enumeration solver, which re-solves the whole program for every
dataset.  Benchmarks on which the baseline exceeds its path budget are
reported as failures ("o/m"), which is the behaviour Table 4 records for
PSI on the large Markov switching and Student Interviews instances.
"""

import pytest

from repro.workloads import psi_benchmarks

from .conftest import bench_scale
from .conftest import write_results

_BENCHMARKS = psi_benchmarks.table4_benchmarks(scale=bench_scale())
_ROWS = {}


@pytest.mark.parametrize(
    "bench", _BENCHMARKS, ids=[b.name for b in _BENCHMARKS]
)
def test_table4_psi_comparison(benchmark, bench):
    timings = benchmark.pedantic(
        lambda: psi_benchmarks.run_sppl(bench), iterations=1, rounds=1
    )
    outcome = psi_benchmarks.run_baseline(bench, max_paths=20000)

    if not outcome.failed:
        for sppl_answer, baseline_answer in zip(timings.answers, outcome.answers):
            assert sppl_answer == pytest.approx(baseline_answer, abs=1e-6)

    mean_condition = sum(timings.condition) / len(timings.condition)
    mean_query = sum(timings.query) / len(timings.query)
    baseline_total = "o/m" if outcome.failed else "%.2f" % (outcome.total,)
    _ROWS[bench.name] = (
        bench.signature,
        bench.n_datasets,
        timings.translate,
        mean_condition,
        mean_query,
        timings.total,
        baseline_total,
    )

    if len(_ROWS) == len(_BENCHMARKS):
        lines = [
            "benchmark | signature | datasets | translate s | condition s/dataset | "
            "query s/dataset | SPPL total s | baseline total s"
        ]
        for b in _BENCHMARKS:
            sig, n, tr, co, qu, total, base = _ROWS[b.name]
            lines.append(
                "%s | %s | %d | %.3f | %.3f | %.3f | %.2f | %s"
                % (b.name, sig, n, tr, co, qu, total, base)
            )
        write_results("table4_psi", lines)
