"""Round-trip tests for JSON serialization of sum-product expressions."""

import math

import pytest

from repro.distributions import atomic
from repro.distributions import bernoulli
from repro.distributions import choice
from repro.distributions import normal
from repro.distributions import poisson
from repro.distributions import uniform
from repro.engine import SpplModel
from repro.spe import Leaf
from repro.spe import spe_from_dict
from repro.spe import spe_from_json
from repro.spe import spe_product
from repro.spe import spe_sum
from repro.spe import spe_to_dict
from repro.spe import spe_to_json
from repro.spe.serialize import SerializationError
from repro.spe.serialize import distribution_from_dict
from repro.spe.serialize import distribution_to_dict
from repro.spe.serialize import transform_from_dict
from repro.spe.serialize import transform_to_dict
from repro.transforms import Id
from repro.transforms import exp
from repro.transforms import log
from repro.transforms import sqrt

X = Id("X")
Y = Id("Y")


def _assert_same_distribution(original, restored, events):
    for event in events:
        assert restored.prob(event) == pytest.approx(original.prob(event), abs=1e-12)


class TestTransformSerialization:
    @pytest.mark.parametrize(
        "transform",
        [
            X,
            2 * X + 1,
            X ** 3 - 4 * X,
            1 / X,
            abs(X),
            sqrt(X),
            exp(X, 2.0),
            log(X, 10.0),
            5 * sqrt(X) + 11,
            1 / exp(X ** 2),
        ],
        ids=lambda t: type(t).__name__ + repr(getattr(t, "coeffs", "")),
    )
    def test_round_trip_evaluates_identically(self, transform):
        restored = transform_from_dict(transform_to_dict(transform))
        for x in (-2.0, -0.5, 0.3, 1.0, 4.0):
            original_value = transform.evaluate(x)
            restored_value = restored.evaluate(x)
            if math.isnan(original_value):
                assert math.isnan(restored_value)
            else:
                assert restored_value == pytest.approx(original_value)

    def test_unknown_kind_rejected(self):
        with pytest.raises(SerializationError):
            transform_from_dict({"kind": "mystery"})


class TestDistributionSerialization:
    @pytest.mark.parametrize(
        "dist",
        [
            normal(1, 2),
            uniform(0, 4),
            poisson(3),
            bernoulli(0.25),
            atomic(7),
            choice({"a": 0.2, "b": 0.8}),
        ],
        ids=lambda d: type(d).__name__,
    )
    def test_round_trip_preserves_probabilities(self, dist):
        from repro.sets import interval

        restored = distribution_from_dict(distribution_to_dict(dist))
        assert type(restored) is type(dist)
        assert restored.logprob(interval(0, 2)) == pytest.approx(
            dist.logprob(interval(0, 2)), abs=1e-12
        )

    def test_truncated_distribution_round_trip(self):
        from repro.distributions import RealDistribution
        from repro.sets import interval

        dist = RealDistribution(normal(0, 1).dist, lo=0.5, hi=2.0)
        restored = distribution_from_dict(distribution_to_dict(dist))
        assert restored.prob(interval(0.5, 1.0)) == pytest.approx(
            dist.prob(interval(0.5, 1.0))
        )


class TestSpeSerialization:
    def test_leaf_round_trip(self):
        leaf = Leaf("X", normal(0, 2), env={"Z": X ** 2 + 1})
        restored = spe_from_dict(spe_to_dict(leaf))
        _assert_same_distribution(leaf, restored, [X > 0, Id("Z") < 3])

    def test_mixture_round_trip(self):
        model = spe_sum(
            [
                spe_product([Leaf("X", uniform(0, 1)), Leaf("Y", bernoulli(0.2))]),
                spe_product([Leaf("X", normal(5, 1)), Leaf("Y", bernoulli(0.9))]),
            ],
            [math.log(0.3), math.log(0.7)],
        )
        restored = spe_from_json(spe_to_json(model))
        _assert_same_distribution(
            model, restored, [X < 1, Y == 1, (X > 4) & (Y == 1), (X < 0.5) | (Y == 0)]
        )

    def test_sharing_is_preserved(self):
        shared = Leaf("Y", bernoulli(0.5))
        model = spe_sum(
            [
                spe_product([Leaf("X", uniform(0, 1)), shared]),
                spe_product([Leaf("X", uniform(2, 3)), shared]),
            ],
            [math.log(0.5), math.log(0.5)],
        )
        restored = spe_from_dict(spe_to_dict(model))
        assert restored.size() == model.size()
        assert restored.tree_size() == model.tree_size()

    def test_invalid_payload_rejected(self):
        with pytest.raises(SerializationError):
            spe_from_dict({"format": "something-else"})


class TestModelPersistence:
    def test_posterior_round_trip_through_json(self):
        from repro.workloads import indian_gpa

        model = indian_gpa.model()
        posterior = model.condition(indian_gpa.conditioning_event())
        restored = SpplModel.from_json(posterior.to_json())
        for event in [
            indian_gpa.Nationality == "India",
            indian_gpa.Perfect == 1,
            indian_gpa.GPA > 3.9,
        ]:
            assert restored.prob(event) == pytest.approx(posterior.prob(event))

    def test_save_and_load(self, tmp_path):
        model = SpplModel.from_source("X ~ normal(0, 1)\nY ~ bernoulli(p=0.25)")
        path = tmp_path / "model.json"
        model.save(path)
        restored = SpplModel.load(path)
        assert restored.variables == model.variables
        assert restored.prob(Y == 1) == pytest.approx(0.25)

    def test_loaded_model_supports_further_inference(self):
        model = SpplModel.from_source(
            """
X ~ uniform(0, 10)
if X < 4:
    Y ~ bernoulli(p=0.9)
else:
    Y ~ bernoulli(p=0.1)
"""
        )
        restored = SpplModel.from_json(model.to_json())
        posterior = restored.condition(Y == 1)
        assert posterior.prob(X < 4) == pytest.approx(
            model.condition(Y == 1).prob(X < 4)
        )
        assert len(restored.sample(3, seed=0)) == 3
