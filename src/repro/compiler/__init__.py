"""SPPL source language: command IR, translator, textual parser, renderer."""

from .commands import Assign
from .commands import Command
from .commands import Condition
from .commands import For
from .commands import IfElse
from .commands import Sample
from .commands import Sequence
from .commands import Skip
from .commands import Switch
from .commands import TranslationOptions
from .commands import compile_command
from .commands import rejection_sample
from .parser import SpplParseError
from .parser import SpplParser
from .parser import binspace
from .parser import compile_sppl
from .parser import parse_event
from .parser import parse_sppl
from .render import render_distribution
from .render import render_spe
from .render import render_transform

__all__ = [
    "Assign",
    "Command",
    "Condition",
    "For",
    "IfElse",
    "Sample",
    "Sequence",
    "Skip",
    "SpplParseError",
    "SpplParser",
    "Switch",
    "TranslationOptions",
    "binspace",
    "compile_command",
    "compile_sppl",
    "parse_sppl",
    "rejection_sample",
    "render_distribution",
    "render_spe",
    "render_transform",
]
