"""High-level modelling and inference API (the workflow of Fig. 1)."""

from .model import SpplModel
from .model import parse_event

__all__ = ["SpplModel", "parse_event"]
