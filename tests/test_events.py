"""Unit tests for the Event domain: construction, solving, negation, evaluation."""

import pytest

from repro.events import Conjunction
from repro.events import Containment
from repro.events import Disjunction
from repro.events import Event
from repro.events import EventNever
from repro.sets import EMPTY_SET
from repro.sets import FiniteNominal
from repro.sets import FiniteReal
from repro.sets import interval
from repro.transforms import Id
from repro.transforms import sqrt

X = Id("X")
Y = Id("Y")


class TestEventConstruction:
    def test_comparison_operators_build_containments(self):
        assert isinstance(X < 1, Containment)
        assert isinstance(X <= 1, Containment)
        assert isinstance(X > 1, Containment)
        assert isinstance(X >= 1, Containment)
        assert isinstance(X == 1, Containment)
        assert isinstance(X != 1, Containment)

    def test_string_equality(self):
        event = X == "a"
        assert isinstance(event, Containment)
        assert event.values == FiniteNominal(["a"])

    def test_membership_operator(self):
        event = X << {1, 2, 3}
        assert event.values == FiniteReal([1, 2, 3])

    def test_membership_with_strings(self):
        event = X << {"a", "b"}
        assert event.values == FiniteNominal(["a", "b"])

    def test_and_or_invert(self):
        event = (X < 1) & (Y > 2)
        assert isinstance(event, Conjunction)
        event = (X < 1) | (Y > 2)
        assert isinstance(event, Disjunction)
        assert isinstance(~(X < 1), Event)

    def test_compound_flattening(self):
        event = ((X < 1) & (Y > 2)) & (X > -1)
        assert len(event.events) == 3

    def test_events_have_no_truth_value(self):
        with pytest.raises(TypeError):
            bool(X < 1)

    def test_transforms_have_no_truth_value(self):
        with pytest.raises(TypeError):
            bool(X)

    def test_get_symbols(self):
        assert ((X < 1) & (Y > 2)).get_symbols() == frozenset(["X", "Y"])

    def test_transform_comparison(self):
        event = X ** 2 < 4
        assert event.get_symbols() == frozenset(["X"])


class TestEventSolve:
    def test_simple_interval(self):
        assert (X < 1).solve() == interval(-float("inf"), 1, True, True)

    def test_conjunction_intersects(self):
        solved = ((X >= 0) & (X < 2)).solve()
        assert solved == interval(0, 2, False, True)

    def test_disjunction_unions(self):
        solved = ((X < 0) | (X > 1)).solve()
        assert solved.contains(-1)
        assert solved.contains(2)
        assert not solved.contains(0.5)

    def test_transform_solved_through_preimage(self):
        solved = (X ** 2 <= 4).solve()
        assert solved.contains(-2)
        assert solved.contains(2)
        assert not solved.contains(3)

    def test_contradiction_solves_to_empty(self):
        assert ((X < 0) & (X > 1)).solve() is EMPTY_SET

    def test_event_never(self):
        never = EventNever()
        assert never.solve() is EMPTY_SET
        assert not never.evaluate({"X": 1})
        assert never.dnf_clauses() == []


class TestEventNegation:
    def test_negate_interval(self):
        negated = (X < 1).negate()
        assert negated.evaluate({"X": 1})
        assert negated.evaluate({"X": 2})
        assert not negated.evaluate({"X": 0})

    def test_negate_nominal(self):
        negated = (X == "a").negate()
        assert negated.evaluate({"X": "b"})
        assert not negated.evaluate({"X": "a"})

    def test_de_morgan(self):
        event = (X < 1) & (Y > 2)
        negated = event.negate()
        assert isinstance(negated, Disjunction)

    def test_double_negation_membership(self):
        event = (X << {1, 2}) | (X > 10)
        twice = event.negate().negate()
        for value in (1, 2, 5, 11):
            assert event.evaluate({"X": value}) == twice.evaluate({"X": value})


class TestEventEvaluate:
    def test_numeric(self):
        assert (X < 1).evaluate({"X": 0})
        assert not (X < 1).evaluate({"X": 2})

    def test_string(self):
        assert (X == "a").evaluate({"X": "a"})
        assert not (X == "a").evaluate({"X": "b"})

    def test_transform_evaluation(self):
        assert (X ** 2 <= 4).evaluate({"X": 1.5})
        assert not (X ** 2 <= 4).evaluate({"X": 3})

    def test_string_under_transform_is_false(self):
        assert not (X ** 2 <= 4).evaluate({"X": "a"})

    def test_undefined_transform_is_false(self):
        assert not (sqrt(X) < 1).evaluate({"X": -1})

    def test_missing_variable_raises(self):
        with pytest.raises(KeyError):
            (X < 1).evaluate({"Y": 0})

    def test_compound_evaluation(self):
        event = ((X > 0) & (Y == "a")) | (X < -10)
        assert event.evaluate({"X": 1, "Y": "a"})
        assert event.evaluate({"X": -11, "Y": "b"})
        assert not event.evaluate({"X": 1, "Y": "b"})


class TestDnf:
    def test_literal_single_clause(self):
        assert (X < 1).dnf_clauses() == [[(X < 1)]] or len((X < 1).dnf_clauses()) == 1

    def test_conjunction_of_disjunction_distributes(self):
        event = ((X < 1) | (X > 5)) & (Y > 0)
        clauses = event.dnf_clauses()
        assert len(clauses) == 2
        assert all(len(clause) == 2 for clause in clauses)

    def test_nested_distribution(self):
        event = ((X < 1) | (X > 5)) & ((Y > 0) | (Y < -1))
        assert len(event.dnf_clauses()) == 4

    def test_to_dnf_preserves_semantics(self):
        event = ((X < 1) | (X > 5)) & ((Y > 0) | (Y < -1))
        dnf = event.to_dnf()
        for x in (-2, 0, 2, 6):
            for y in (-3, -0.5, 1):
                assignment = {"X": x, "Y": y}
                assert event.evaluate(assignment) == dnf.evaluate(assignment)


class TestSubstituteEnv:
    def test_substitution_of_derived_variable(self):
        env = {"Z": X ** 2}
        event = (Id("Z") < 4).substitute_env(env)
        assert event.get_symbols() == frozenset(["X"])
        assert event.evaluate({"X": 1})
        assert not event.evaluate({"X": 3})

    def test_chained_substitution(self):
        env = {"Z": X + 1, "W": Id("Z") * 2}
        event = (Id("W") > 6).substitute_env(env)
        assert event.get_symbols() == frozenset(["X"])
        assert event.evaluate({"X": 3})
        assert not event.evaluate({"X": 1})

    def test_rename(self):
        event = ((X < 1) & (Y > 2)).rename({"X": "A"})
        assert event.get_symbols() == frozenset(["A", "Y"])
