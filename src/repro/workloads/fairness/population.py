"""Population models for the fairness benchmarks (Table 2).

Three population programs over job-applicant features, mirroring the three
population models used by FairSquare for its decision-tree benchmarks: a
fully independent model and two Bayesian networks in which the applicant's
demographic attribute influences the other features.  The feature names and
parameter magnitudes follow the adult-income data conventions used by the
original benchmarks (re-implemented; see DESIGN.md).

Features:

* ``sex``             -- 1 for the minority group, 0 otherwise,
* ``age``             -- years,
* ``education_num``   -- years of education,
* ``capital_gain``    -- yearly capital gains in dollars,
* ``hours_per_week``  -- working hours per week.
"""

from __future__ import annotations

from typing import Callable
from typing import Dict

from ...compiler import Command
from ...compiler import IfElse
from ...compiler import Sample
from ...compiler import Sequence
from ...distributions import bernoulli
from ...distributions import normal
from ...events import Event
from ...transforms import Id

SEX = Id("sex")
AGE = Id("age")
EDUCATION = Id("education_num")
CAPITAL_GAIN = Id("capital_gain")
HOURS = Id("hours_per_week")

#: The protected (minority) group predicate.
MINORITY_EVENT: Event = SEX == 1

#: The qualification predicate used in the fairness ratio (Eq. 7).
QUALIFIED_EVENT: Event = AGE > 18


def independent_population() -> Command:
    """All features independent of the protected attribute."""
    return Sequence(
        [
            Sample("sex", bernoulli(0.3307)),
            Sample("age", normal(38.58, 13.64)),
            Sample("education_num", normal(10.08, 3.87)),
            Sample("capital_gain", normal(1077.65, 7385.29)),
            Sample("hours_per_week", normal(40.44, 12.35)),
        ]
    )


def bayes_net_1_population() -> Command:
    """Bayes net 1: capital gain depends on sex; age and education on capital gain."""

    def given_sex(capital_mean: float, capital_std: float) -> Command:
        return Sequence(
            [
                Sample("capital_gain", normal(capital_mean, capital_std)),
                IfElse(
                    [
                        (
                            CAPITAL_GAIN < 7298.0,
                            Sequence(
                                [
                                    Sample("age", normal(38.4, 13.3)),
                                    Sample("education_num", normal(10.0, 3.8)),
                                ]
                            ),
                        ),
                        (
                            None,
                            Sequence(
                                [
                                    Sample("age", normal(44.2, 11.1)),
                                    Sample("education_num", normal(12.8, 2.4)),
                                ]
                            ),
                        ),
                    ]
                ),
            ]
        )

    return Sequence(
        [
            Sample("sex", bernoulli(0.3307)),
            IfElse(
                [
                    (SEX == 1, given_sex(568.41, 2400.0)),
                    (None, given_sex(1329.37, 8100.0)),
                ]
            ),
            Sample("hours_per_week", normal(40.44, 12.35)),
        ]
    )


def bayes_net_2_population() -> Command:
    """Bayes net 2: adds a dependence of working hours on sex and education."""

    def hours_given(education_threshold: float, low_mean: float, high_mean: float) -> Command:
        return IfElse(
            [
                (EDUCATION < education_threshold, Sample("hours_per_week", normal(low_mean, 11.0))),
                (None, Sample("hours_per_week", normal(high_mean, 11.5))),
            ]
        )

    def given_sex(capital_mean: float, capital_std: float, low_hours: float, high_hours: float) -> Command:
        return Sequence(
            [
                Sample("capital_gain", normal(capital_mean, capital_std)),
                IfElse(
                    [
                        (
                            CAPITAL_GAIN < 7298.0,
                            Sequence(
                                [
                                    Sample("age", normal(38.4, 13.3)),
                                    Sample("education_num", normal(10.0, 3.8)),
                                ]
                            ),
                        ),
                        (
                            None,
                            Sequence(
                                [
                                    Sample("age", normal(44.2, 11.1)),
                                    Sample("education_num", normal(12.8, 2.4)),
                                ]
                            ),
                        ),
                    ]
                ),
                hours_given(10.0, low_hours, high_hours),
            ]
        )

    return Sequence(
        [
            Sample("sex", bernoulli(0.3307)),
            IfElse(
                [
                    (SEX == 1, given_sex(568.41, 2400.0, 36.5, 40.2)),
                    (None, given_sex(1329.37, 8100.0, 40.1, 44.5)),
                ]
            ),
        ]
    )


#: Registry of population models keyed by the names used in Table 2.
POPULATION_MODELS: Dict[str, Callable[[], Command]] = {
    "independent": independent_population,
    "bayes_net_1": bayes_net_1_population,
    "bayes_net_2": bayes_net_2_population,
}


def population_program(name: str) -> Command:
    """Build a population model by name."""
    if name not in POPULATION_MODELS:
        raise KeyError(
            "Unknown population model %r; available: %s"
            % (name, sorted(POPULATION_MODELS))
        )
    return POPULATION_MODELS[name]()
