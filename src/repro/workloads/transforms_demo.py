"""Inference on a stochastic many-to-one transformation (Fig. 4, Appendix C.3).

``X ~ Normal(0, 2)``; the derived variable ``Z`` is a piecewise function of
``X``: a cubic polynomial when ``X < 1`` and ``-5*sqrt(X) + 11`` otherwise
(the transform shown in Fig. 4e).  Conditioning on ``Z**2 <= 4 and Z >= 0``
splits the prior into three restricted components with weights approximately
0.16 / 0.49 / 0.35 (Fig. 4d).
"""

from __future__ import annotations

from typing import List

from ..engine import SpplModel
from ..events import Event
from ..transforms import Id

#: SPPL source for the prior program of Fig. 4a.
SOURCE = """
X ~ normal(0, 2)
if X < 1:
    Z ~ -X**3 + X**2 + 6*X
else:
    Z ~ -5*sqrt(X) + 11
"""

X = Id("X")
Z = Id("Z")


def model() -> SpplModel:
    """Translate the Fig. 4 program into a model."""
    return SpplModel.from_source(SOURCE)


def conditioning_event() -> Event:
    """The conditioning event of Fig. 4c: ``Z**2 <= 4 and Z >= 0``."""
    return (Z ** 2 <= 4) & (Z >= 0)


def posterior_component_weights(posterior: SpplModel) -> List[float]:
    """Weights of the three X-regions of the conditioned expression (Fig. 4d).

    The regions are, from left to right on the X axis:
    ``[-2.17.., -2]``, ``[0, 0.32..]`` and ``[81/25, 121/25]``.
    """
    regions = [
        (X >= -2.5) & (X <= -2.0),
        (X >= 0.0) & (X <= 0.5),
        (X >= 81.0 / 25.0) & (X <= 121.0 / 25.0),
    ]
    return [posterior.prob(region) for region in regions]
