"""Streaming posterior sessions over the real wire.

The acceptance scenario: a >= 5-observe session driven through the HTTP
endpoints is **bit-identical** to the in-process library condition chain
(:class:`repro.engine.PosteriorChain`), including commit-on-success
semantics (a rejected observation leaves the chain untouched), tenant
namespacing, per-tenant session quotas, TTL expiry, and LRU eviction.
"""

import asyncio

import pytest

from repro.engine import ChainBoundError
from repro.engine import PosteriorChain
from repro.engine import ZeroProbabilityError
from repro.serve import AsyncServeClient
from repro.serve import InferenceService
from repro.serve import ModelRegistry
from repro.serve import ServeClientError
from repro.serve import SessionExists
from repro.serve import SessionNotFound
from repro.serve import SessionQuotaError
from repro.serve import SessionStore
from repro.serve import value_of
from repro.workloads import hmm
from repro.workloads import scenarios


def run_service(test, models=("hmm5",), **service_kwargs):
    """Start an in-process service, run ``await test(client, service)``."""

    async def main():
        registry = ModelRegistry()
        for name in models:
            registry.register_catalog(name)
        service = InferenceService(registry, **service_kwargs)
        host, port = await service.start()
        try:
            return await test(AsyncServeClient(host, port), service)
        finally:
            await service.close()

    return asyncio.run(main())


class TestWireSessions:
    def test_five_observe_session_bit_identical_to_library_chain(self):
        script = scenarios.hmm_sensor_fusion(3, seed=0)
        assert len(script["observes"]) >= 5

        async def test(client, service):
            await client.create_session("fusion", "hmm3", tenant="acme")
            for event in script["observes"]:
                response = await client.observe("fusion", event, tenant="acme")
                assert response["ok"]
            wire_values = [
                await client.session_logprob("fusion", query, tenant="acme")
                for query in script["queries"]
            ]
            described = await client.describe_session("fusion", tenant="acme")
            assert described["chain"] == script["observes"]
            assert described["queries"] == len(script["queries"])
            return wire_values

        wire_values = run_service(test, models=("hmm3",))
        with PosteriorChain(hmm.model(3), script["observes"]) as chain:
            library_values = [
                chain.current.logprob(query) for query in script["queries"]
            ]
        assert wire_values == library_values

    def test_rejected_observe_leaves_chain_unchanged(self):
        async def test(client, service):
            await client.create_session("s", "hmm3")
            assert (await client.observe("s", "X[0] < 0.5"))["ok"]
            # Zero-probability evidence: the posterior does not exist, so
            # the observe fails and the chain must not move.
            with pytest.raises(ServeClientError):
                await client.observe("s", "X[0] > 0.5")
            # Unparseable evidence fails the same way.
            with pytest.raises(ServeClientError):
                await client.observe("s", "NOT_A_VARIABLE < 1")
            described = await client.describe_session("s")
            assert described["chain"] == ["X[0] < 0.5"]
            # The session still answers queries against the 1-step chain.
            value = await client.session_logprob("s", "Z[0] == 1")
            assert value == hmm.model(3).condition("X[0] < 0.5").logprob("Z[0] == 1")

        run_service(test, models=("hmm3",))

    def test_tenant_namespaces_are_isolated(self):
        async def test(client, service):
            await client.create_session("shared-name", "hmm3", tenant="alice")
            await client.create_session("shared-name", "hmm3", tenant="bob")
            assert (await client.observe(
                "shared-name", "X[0] < 0.0", tenant="alice"
            ))["ok"]
            alice = await client.describe_session("shared-name", tenant="alice")
            bob = await client.describe_session("shared-name", tenant="bob")
            assert alice["chain"] == ["X[0] < 0.0"]
            assert bob["chain"] == []
            listed = await client.list_sessions(tenant="alice")
            assert [s["session"] for s in listed["sessions"]] == ["shared-name"]
            assert all(s["tenant"] == "alice" for s in listed["sessions"])

        run_service(test, models=("hmm3",))

    def test_create_conflict_delete_and_unknown_session(self):
        async def test(client, service):
            await client.create_session("s", "hmm3")
            with pytest.raises(ServeClientError):  # 409
                await client.create_session("s", "hmm3")
            deleted = await client.delete_session("s")
            assert deleted["deleted"]
            with pytest.raises(ServeClientError):  # 404
                await client.describe_session("s")
            with pytest.raises(ServeClientError):  # 404
                await client.observe("s", "X[0] < 0.5")
            # The name is free again after the delete.
            await client.create_session("s", "hmm3")

        run_service(test, models=("hmm3",))

    def test_per_tenant_session_quota(self):
        async def test(client, service):
            await client.create_session("a", "hmm3", tenant="greedy")
            await client.create_session("b", "hmm3", tenant="greedy")
            with pytest.raises(ServeClientError) as excinfo:  # 429
                await client.create_session("c", "hmm3", tenant="greedy")
            assert "quota" in str(excinfo.value)
            # Another tenant is unaffected by the shed.
            await client.create_session("c", "hmm3", tenant="modest")

        run_service(test, models=("hmm3",), max_sessions_per_tenant=2)

    def test_lru_eviction_under_max_sessions(self):
        async def test(client, service):
            await client.create_session("oldest", "hmm3")
            await client.create_session("middle", "hmm3")
            # Touch "oldest" so "middle" becomes the LRU victim.
            await client.describe_session("oldest")
            await client.create_session("newest", "hmm3")
            with pytest.raises(ServeClientError):  # 404: evicted
                await client.describe_session("middle")
            await client.describe_session("oldest")
            await client.describe_session("newest")
            stats = await client.stats()
            assert stats["sessions"]["evicted_lru"] == 1
            assert stats["sessions"]["open"] == 2

        run_service(test, models=("hmm3",), max_sessions=2)

    def test_bayes_net_scenario_registered_by_payload(self):
        script = scenarios.bayes_net_session(layers=3, width=2, seed=5)

        async def test(client, service):
            await client.register_model(
                "bnet", payload=script["model"].to_json()
            )
            await client.create_session("bn", "bnet")
            for event in script["observes"]:
                assert (await client.observe("bn", event))["ok"]
            responses = [
                await client.session_query("bn", "query", {"event": query})
                for query in script["queries"]
            ]
            return [value_of(response) for response in responses]

        wire_values = run_service(test, models=("hmm3",))
        with PosteriorChain(script["model"], script["observes"]) as chain:
            library_values = [
                chain.current.prob(query) for query in script["queries"]
            ]
        assert wire_values == library_values


class TestSessionStoreUnit:
    def test_ttl_expiry_with_injected_clock(self):
        now = [0.0]
        store = SessionStore(ttl_s=10.0, clock=lambda: now[0])
        store.create("t", "a", "m")
        store.create("t", "b", "m")
        now[0] = 5.0
        store.get("t", "a")  # touch: refreshes a's idle clock
        now[0] = 12.0
        with pytest.raises(SessionNotFound):
            store.get("t", "b")  # idle 12s > ttl
        assert store.get("t", "a").name == "a"  # idle 7s, still live
        assert store.stats()["evicted_ttl"] == 1
        assert store.stats()["open"] == 1

    def test_quota_exists_and_lru_accounting(self):
        store = SessionStore(max_sessions=2, max_sessions_per_tenant=2)
        store.create("t", "a", "m")
        with pytest.raises(SessionExists):
            store.create("t", "a", "m")
        store.create("t", "b", "m")
        with pytest.raises(SessionQuotaError):
            store.create("t", "c", "m")
        # Another tenant's create is admitted and LRU-evicts t/a.
        store.create("u", "c", "m")
        with pytest.raises(SessionNotFound):
            store.get("t", "a")
        assert store.stats()["by_tenant"] == {"t": 1, "u": 1}
        store.delete("u", "c")
        assert store.stats()["by_tenant"] == {"t": 1}

    def test_commit_on_success_discipline(self):
        store = SessionStore()
        session = store.create("t", "s", "m")
        chain = session.candidate_chain("e1")
        assert session.chain == ()  # not committed yet
        store.commit_observe(session, chain)
        assert session.chain == ("e1",)


class TestPosteriorChain:
    def test_chain_matches_scratch_conditioning(self):
        model = hmm.model(3)
        events = ["X[0] < 0.5", "Y[0] == 1", "X[1] < 0.0"]
        scratch = model
        for event in events:
            scratch = scratch.condition(event)
        with PosteriorChain(model, events) as chain:
            assert chain.current.logprob("Z[2] == 1") == scratch.logprob(
                "Z[2] == 1"
            )
            assert len(chain) == 3

    def test_failed_observe_leaves_chain_unchanged(self):
        with PosteriorChain(hmm.model(3)) as chain:
            chain.observe("X[0] < 0.5")
            with pytest.raises(ZeroProbabilityError):
                chain.observe("X[0] > 0.5")
            assert chain.events == ["X[0] < 0.5"]
            assert chain.current.logprob("Z[0] == 1") == hmm.model(3).condition(
                "X[0] < 0.5"
            ).logprob("Z[0] == 1")

    def test_step_bound_and_close(self):
        chain = PosteriorChain(hmm.model(3), max_steps=1)
        chain.observe("X[0] < 0.5")
        with pytest.raises(ChainBoundError):
            chain.observe("X[1] < 0.5")
        chain.close()
        with pytest.raises(ChainBoundError):
            chain.observe("X[1] < 0.5")
