"""Exact smoothing in a hierarchical hidden Markov model (Sec. 2.2, Fig. 3).

Simulates observations from the generative process, conditions the
translated sum-product expression on all of them at once (a measure-zero
observation of 2*T continuous/discrete values), and queries the exact
posterior marginal P(Z_t = 1 | data) for every time step.  The result is
validated against a classical forward-backward smoother and rendered as an
ASCII plot.

Run with::

    python examples/hmm_smoothing.py [n_steps]
"""

import sys
import time

from repro.baselines import hmm_smoothing_forward_backward
from repro.workloads import hmm


def ascii_plot(posteriors, true_states, width: int = 1) -> str:
    """Render posterior probabilities next to the true hidden states."""
    rows = []
    for t, (p, z) in enumerate(zip(posteriors, true_states)):
        bar = "#" * int(round(p * 40))
        rows.append("t=%3d  true=%d  P(Z=1|data)=%.3f  |%-40s|" % (t, z, p, bar))
    return "\n".join(rows)


def main() -> None:
    n_step = int(sys.argv[1]) if len(sys.argv) > 1 else 30

    print("simulating %d steps of the hierarchical HMM..." % (n_step,))
    data = hmm.simulate_data(n_step, seed=7)
    print("ground-truth 'separated' switch:", data["separated"])

    start = time.perf_counter()
    model = hmm.model(n_step)
    print(
        "translated in %.2fs -- expression has %d nodes (unrolled tree: ~1e%d nodes)"
        % (time.perf_counter() - start, model.size(), len(str(model.tree_size())) - 1)
    )

    start = time.perf_counter()
    posteriors = hmm.smooth(model, data["x"], data["y"])
    print("smoothing (condition once + %d queries) took %.2fs" % (n_step, time.perf_counter() - start))

    oracle = hmm_smoothing_forward_backward(data["x"], data["y"])
    max_error = max(abs(a - b) for a, b in zip(posteriors, oracle["smoothed"]))
    print("max |SPPL - forward-backward| = %.2e" % (max_error,))
    print("posterior P(separated = 1 | data) = %.3f" % (oracle["p_separated"],))

    print()
    print(ascii_plot(posteriors, data["z"]))


if __name__ == "__main__":
    main()
