"""Univariate transforms of random variables and their preimage solver.

The public surface mirrors Lst. 1b / Appendix C of the paper:

* :func:`Id` -- a program variable (the Identity transform),
* arithmetic on transforms via Python operators (``+``, ``-``, ``*``, ``/``,
  ``**``, ``abs``),
* :func:`sqrt`, :func:`exp`, :func:`log` convenience constructors,
* :class:`Piecewise` for case-defined transforms,
* comparisons (``<``, ``<=``, ``>``, ``>=``, ``==``, ``<<``) which build
  :mod:`repro.events` predicates.

Every transform supports two evaluation surfaces:

* ``evaluate(x)`` -- scalar evaluation; returns NaN where the transform is
  undefined.  This is the **reference semantics**.
* ``evaluate_many(xs)`` -- vectorized evaluation over a 1-D numpy array
  (or anything ``np.asarray`` accepts), returning a float ndarray.  The
  contract is elementwise, bit-for-bit agreement with ``evaluate``:
  ``evaluate_many(xs)[i] == evaluate(float(xs[i]))`` for every ``i``,
  with NaN results at exactly the same (undefined) points and identical
  handling of ``+/-inf`` inputs.  Every concrete subclass implements a
  numpy kernel (Horner evaluation for polynomials, masked branch dispatch
  for piecewise transforms); the base-class fallback is the per-element
  reference loop.  ``evaluate_many`` is the hot path of vectorized bulk
  sampling of derived variables (``Leaf._sample_batch``), and is
  property-tested against the scalar semantics in
  ``tests/test_transforms_evaluate_many.py``.
"""

import math

from .arithmetic import Abs
from .arithmetic import Exp
from .arithmetic import Log
from .arithmetic import Radical
from .arithmetic import Reciprocal
from .base import Transform
from .identity import Id
from .identity import Identity
from .piecewise import Piecewise
from .polynomial import Poly
from .polynomial import poly_lte
from .polynomial import poly_roots
from .polynomial import poly_solve


def sqrt(transform: Transform) -> Transform:
    """Square root of a transform."""
    return Radical(transform, 2)


def exp(transform: Transform, base: float = math.e) -> Transform:
    """Exponential ``base ** transform``."""
    return Exp(transform, base)


def log(transform: Transform, base: float = math.e) -> Transform:
    """Logarithm ``log_base(transform)``."""
    return Log(transform, base)


__all__ = [
    "Abs",
    "Exp",
    "Id",
    "Identity",
    "Log",
    "Piecewise",
    "Poly",
    "Radical",
    "Reciprocal",
    "Transform",
    "exp",
    "log",
    "poly_lte",
    "poly_roots",
    "poly_solve",
    "sqrt",
]
