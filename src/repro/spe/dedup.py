"""Structural deduplication of sum-product expressions (Sec. 5.1, Fig. 6b).

When a translated expression contains identical sub-expressions that cannot
be factored out without violating the scope conditions, the optimizer
resolves them into a single physical node shared by every parent.  Since the
introduction of hash-consing (:mod:`~repro.spe.interning`), deduplication
*is* interning: :func:`deduplicate` resolves every subtree against the
global unique table, so structurally-equal subgraphs -- within one
expression or across separately built expressions -- become physically
shared.  All inference algorithms memoize on structural node uids, so
deduplication directly reduces both memory and repeated computation.

The expressions produced by the canonicalizing constructors are already
interned; an explicit :func:`deduplicate` pass is only needed for graphs
assembled from raw node constructors (e.g. hand-built test fixtures or
graphs created under :class:`~repro.spe.interning.no_interning`).
"""

from __future__ import annotations

from typing import Tuple

from ..distributions import Distribution
from .base import SPE
from .interning import intern
from .interning import structural_key as node_structural_key


def distribution_key(dist: Distribution) -> Tuple:
    """A structural key identifying a primitive distribution.

    Retained for backward compatibility; the canonical implementation is
    :meth:`Distribution.structural_key`.
    """
    return dist.structural_key()


def node_key(node: SPE, child_ids: Tuple[int, ...] = None) -> Tuple:
    """The structural key of a node (children resolved via interning).

    The ``child_ids`` parameter of the legacy signature is ignored: keys
    are now computed against the global unique table, which already
    identifies children canonically.
    """
    return node_structural_key(node)


def deduplicate(spe: SPE) -> SPE:
    """Return an equivalent expression with identical subtrees merged.

    The result is semantically identical to the input (same distribution);
    only the amount of structure sharing changes.  Merging is performed
    against the process-wide unique table, so repeated calls -- and calls
    on structurally overlapping expressions -- share representatives.
    """
    return intern(spe)
