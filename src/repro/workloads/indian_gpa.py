"""The Indian GPA problem (Sec. 2.1, Fig. 2).

A canonical mixed-type model: a student's GPA is either an exact atom (a
perfect score) or a continuous uniform draw, with the support depending on
the student's nationality.
"""

from __future__ import annotations

from typing import Dict
from typing import List

from ..engine import SpplModel
from ..events import Event
from ..transforms import Id

#: The SPPL source program of Fig. 2a.
SOURCE = """
Nationality ~ choice({'India': 0.5, 'USA': 0.5})
if (Nationality == 'India'):
    Perfect ~ bernoulli(p=0.10)
    if Perfect:
        GPA ~ atomic(10)
    else:
        GPA ~ uniform(0, 10)
else:
    Perfect ~ bernoulli(p=0.15)
    if Perfect:
        GPA ~ atomic(4)
    else:
        GPA ~ uniform(0, 4)
"""

Nationality = Id("Nationality")
Perfect = Id("Perfect")
GPA = Id("GPA")


def model() -> SpplModel:
    """Translate the Indian GPA program into a model."""
    return SpplModel.from_source(SOURCE)


def conditioning_event() -> Event:
    """The conditioning event of Fig. 2f."""
    return ((Nationality == "USA") & (GPA > 3)) | ((GPA > 8) & (GPA < 10))


def prior_gpa_cdf(model_: SpplModel, grid: List[float] = None) -> Dict[float, float]:
    """The marginal CDF of GPA (the query of Fig. 2b) on a grid of points."""
    grid = grid if grid is not None else [x / 10.0 for x in range(0, 121)]
    return {g: model_.prob(GPA <= g) for g in grid}


def marginals(model_: SpplModel) -> Dict[str, Dict[object, float]]:
    """Prior or posterior marginals of the three program variables (Fig. 2e/2h)."""
    return {
        "Nationality": {
            "India": model_.prob(Nationality == "India"),
            "USA": model_.prob(Nationality == "USA"),
        },
        "Perfect": {
            0: model_.prob(Perfect == 0),
            1: model_.prob(Perfect == 1),
        },
        "GPA": prior_gpa_cdf(model_),
    }
