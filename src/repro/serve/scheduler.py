"""Micro-batching scheduler: coalesce concurrent requests into batched calls.

Single-event requests that arrive concurrently are grouped per **batch
key** ``(model, kind, condition, shard)`` and evaluated with one
:meth:`~repro.engine.SpplModel.logprob_batch` /
:meth:`~repro.engine.SpplModel.logpdf_batch` call per group, inside one
:meth:`~repro.engine.SpplModel.query_scope` so the cache bound cannot
evict entries mid-batch.  A group flushes when either

* the **window** elapses (default 2 ms, measured from the group's first
  request; ``window=0`` still coalesces every request submitted in the
  same event-loop iteration), or
* the group reaches **max_batch** requests (default 256), or
* a request carries ``no_batch`` (it forms an immediate batch of one --
  the "sequential unbatched" baseline path used by benchmarks).

The scheduler never blocks the event loop on inference: batches run on a
backend (in-process thread executor, or a sharded worker pool), so
request intake overlaps evaluation, which is where the coalescing
throughput win comes from.
"""

from __future__ import annotations

import asyncio
import math
from typing import Dict
from typing import List
from typing import Optional
from typing import Sequence

import threading
from collections import OrderedDict

from .. import obs
from ..engine import SpplModel
from ..obs import MetricsRegistry
from ..obs import Trace
from . import wire
from .wire import LatencyHistogram
from .wire import Result

#: Bound of a per-model :class:`ResultCache` (completed query results).
DEFAULT_RESULT_ENTRIES = 65536

#: Default bound on requests queued (admitted but unanswered) per batch
#: key; past it the scheduler sheds instead of growing the queue.
DEFAULT_MAX_QUEUED_PER_KEY = 1024

#: Advisory back-off carried on 429-style shed responses before any
#: latency has been observed; once the per-kind histograms have data the
#: value is derived from them (:meth:`MicroBatcher.retry_after_ms`).
RETRY_AFTER_MS = 25


class OverloadedError(RuntimeError):
    """A request shed by backpressure (per-key queue bound reached).

    Carries ``retry_after_ms``, the advisory back-off the wire layer
    forwards to the client on the 429-style shed response.
    """

    def __init__(self, message: str, retry_after_ms: int = RETRY_AFTER_MS):
        super().__init__(message)
        self.retry_after_ms = retry_after_ms


class ResultCache:
    """Bounded LRU of completed query results, keyed on the wire payload.

    Exact inference is deterministic: the same (kind, condition, event
    text / assignment) against the same model always yields the same
    float, so completed responses can be replayed from a dict without
    touching the engine at all.  Each serving process (and each worker
    shard) owns one per model; ``sample`` queries are never cached.
    Thread-safe -- evaluation runs on executor threads.
    """

    __slots__ = ("_data", "_lock", "max_entries", "hits", "misses")

    def __init__(self, max_entries: int = DEFAULT_RESULT_ENTRIES):
        self._data: "OrderedDict[tuple, Result]" = OrderedDict()
        self._lock = threading.Lock()
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0

    @staticmethod
    def key(kind: str, condition, payload) -> Optional[tuple]:
        if kind in ("logprob", "prob"):
            return (kind, condition, payload)
        if kind == "logpdf":
            try:
                return (kind, condition, frozenset(payload.items()))
            except (AttributeError, TypeError):
                return None  # malformed assignment: let evaluation report it
        return None  # sample, observe (and unknown kinds) are never cached

    @staticmethod
    def digest_key(
        model: SpplModel, kind: str, condition: Optional[str], payload
    ) -> Optional[tuple]:
        """The cache key, canonicalized by event digest when the model plans.

        With planning enabled, event texts (the query event and the
        condition) are replaced by their normalized
        :func:`~repro.events.event_digest`, so textual variants of one
        predicate (``"X < 3 and Y > 1"`` vs ``"Y > 1 and X < 3"``) share
        a single cache entry.  Unparseable texts keep their raw-text key
        (evaluation will report the error); with planning off this is
        exactly :meth:`key`.
        """
        key = ResultCache.key(kind, condition, payload)
        if key is None or getattr(model, "plan_mode", "off") == "off":
            return key
        parts = list(key)
        if isinstance(condition, tuple):
            # A chain canonicalizes step-wise: successive conditions do
            # not commute with each other textually, but each step's
            # spelling does.
            digests = tuple(model.resolve_key(step) for step in condition)
            if all(digest is not None for digest in digests):
                parts[1] = ("digest-chain", digests)
        elif condition is not None:
            digest = model.resolve_key(condition)
            if digest is not None:
                parts[1] = ("digest", digest)
        if kind in ("logprob", "prob") and isinstance(payload, str):
            digest = model.resolve_key(payload)
            if digest is not None:
                parts[2] = ("digest", digest)
        return tuple(parts)

    def get(self, key: tuple) -> Optional[Result]:
        with self._lock:
            result = self._data.get(key)
            if result is None:
                self.misses += 1
                return None
            self._data.move_to_end(key)
            self.hits += 1
            return result

    def put(self, key: tuple, result: Result) -> None:
        with self._lock:
            self._data[key] = result
            self._data.move_to_end(key)
            while len(self._data) > self.max_entries:
                self._data.popitem(last=False)

    def clear(self) -> None:
        with self._lock:
            self._data.clear()
            self.hits = 0
            self.misses = 0

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "entries": len(self._data),
                "hits": self.hits,
                "misses": self.misses,
                "max_entries": self.max_entries,
            }


def evaluate_batch(
    model: SpplModel, kind: str, condition: Optional[str], payloads: Sequence,
    result_cache: Optional[ResultCache] = None,
    tracer=None,
) -> List[Result]:
    """Evaluate one coalesced batch against a model (pure, process-agnostic).

    This is the single evaluation routine shared by the in-process
    backend and the worker processes, so sharded and unsharded
    deployments are bit-identical by construction.  The whole batch runs
    inside one :meth:`~repro.engine.SpplModel.query_scope`, pinning every
    cache entry it touches against eviction until the batch completes.

    With a :class:`ResultCache`, previously answered (deterministic)
    queries are filled from it and only the misses reach the engine;
    successful fresh results are written back.  Misses sharing one cache
    key (duplicate — or, with planning, digest-equivalent — requests
    coalesced into the same batch) are hoisted: one representative per
    key reaches the engine and its result fans out to every slot.

    A failing ``condition`` fails the whole batch (all its requests share
    the condition); a failing individual event falls back to per-item
    evaluation so one bad request cannot poison its batch-mates.

    ``tracer`` carries the batch's :class:`repro.obs.Trace` across the
    ``run_in_executor`` (or worker-pipe) boundary — context variables do
    not cross threads or processes, so the scheduler captures the active
    trace on the event loop and this function re-activates it here,
    where the engine's instrumentation points can see it.
    """
    if tracer is not None:
        with obs.activate(tracer):
            return _evaluate_batch_cached(model, kind, condition, payloads,
                                          result_cache)
    return _evaluate_batch_cached(model, kind, condition, payloads, result_cache)


def _evaluate_batch_cached(
    model: SpplModel, kind: str, condition: Optional[str], payloads: Sequence,
    result_cache: Optional[ResultCache],
) -> List[Result]:
    if result_cache is None:
        return _evaluate_uncached(model, kind, condition, payloads)
    keys = [
        ResultCache.digest_key(model, kind, condition, payload)
        for payload in payloads
    ]
    results: List[Optional[Result]] = [
        result_cache.get(key) if key is not None else None for key in keys
    ]
    missing = [index for index, result in enumerate(results) if result is None]
    tracer = obs.current()
    if tracer is not None:
        sample = next((key for key in keys if key is not None), None)
        tracer.event(
            "result_cache",
            hits=len(payloads) - len(missing),
            misses=len(missing),
            key=None if sample is None else repr(sample)[:96],
        )
    if missing:
        # One representative evaluation per distinct key; keyless rows
        # (uncacheable payloads) are always evaluated individually.
        representatives: List[int] = []
        position_by_key: Dict[tuple, int] = {}
        for index in missing:
            key = keys[index]
            if key is None or key not in position_by_key:
                if key is not None:
                    position_by_key[key] = len(representatives)
                representatives.append(index)
        fresh = _evaluate_uncached(
            model, kind, condition, [payloads[index] for index in representatives]
        )
        fresh_by_index = dict(zip(representatives, fresh))
        for index in missing:
            key = keys[index]
            result = (
                fresh_by_index[index]
                if key is None
                else fresh[position_by_key[key]]
            )
            results[index] = result
            if result[0] == "ok" and key is not None:
                result_cache.put(key, result)
    return results  # type: ignore[return-value]


def _evaluate_uncached(
    model: SpplModel, kind: str, condition, payloads: Sequence
) -> List[Result]:
    try:
        target = model
        if isinstance(condition, tuple):
            # A posterior chain: successive exact conditions, each on the
            # previous step's interned posterior — the session tier's
            # evaluation shape.  Bit-identical to the library's
            # ``condition`` chain because it *is* that chain, and cheap
            # when warm: every step shares the model's QueryCache.
            for step in condition:
                with obs.span("condition", chars=len(step), chain=True):
                    target = target.condition(step)
        elif condition is not None:
            with obs.span("condition", chars=len(condition)):
                target = model.condition(condition)
    except Exception as error:  # ZeroProbabilityError, parse errors, scope errors
        return wire.error_results(error, len(payloads))
    if kind == "observe":
        # Reaching here proves the shipped chain (whose last step is the
        # newly observed evidence) conditions successfully; the posterior
        # is now warm in this shard's caches.
        return [wire.ok(True)] * len(payloads)
    with target.query_scope():
        if kind in ("logprob", "prob"):
            results = _batch_or_itemwise(target.logprob_batch, target.logprob, payloads)
            if kind == "prob":
                results = [
                    ("ok", math.exp(r[1])) if r[0] == "ok" else r for r in results
                ]
            return results
        if kind == "logpdf":
            return _batch_or_itemwise(target.logpdf_batch, target.logpdf, payloads)
        if kind == "sample":
            results = []
            for spec in payloads:
                try:
                    value = target.sample(n=spec.get("n"), seed=spec.get("seed"))
                    results.append(wire.ok(value))
                except Exception as error:
                    results.append(wire.error(error))
            return results
    return wire.error_results(ValueError("Unknown query kind %r." % (kind,)), len(payloads))


def _batch_or_itemwise(batch_fn, item_fn, payloads: Sequence) -> List[Result]:
    """One batched call; on failure, per-item calls to isolate the culprit."""
    try:
        return [wire.ok(value) for value in batch_fn(list(payloads))]
    except Exception:
        results = []
        for payload in payloads:
            try:
                results.append(wire.ok(item_fn(payload)))
            except Exception as error:
                results.append(wire.error(error))
        return results


class InProcessBackend:
    """Evaluate batches on a thread of the serving process.

    A single shard (``n_shards == 1``): every batch shares the one live
    model and its :class:`~repro.spe.QueryCache`.  Evaluation runs in an
    executor thread so the event loop keeps accepting and coalescing
    requests while a batch computes (the cache is thread-safe).

    The backend keeps its own live-model map, updated through
    :meth:`register_model` / :meth:`unregister_model`: during an
    unregistration the registry entry is removed *first* (rejecting new
    requests) while in-flight batches keep resolving against the map
    until the service has drained them.
    """

    n_shards = 1

    def __init__(self, registry, max_threads: int = 2):
        self.registry = registry
        self._semaphore = asyncio.Semaphore(max_threads)
        self._models: Dict[str, SpplModel] = {
            name: registry.get(name).model for name in registry.names()
        }
        self._result_caches: Dict[str, ResultCache] = {}

    def _result_cache(self, model: str) -> ResultCache:
        cache = self._result_caches.get(model)
        if cache is None:
            cache = self._result_caches[model] = ResultCache()
        return cache

    def _model(self, name: str) -> Optional[SpplModel]:
        model = self._models.get(name)
        if model is None and name in self.registry:
            # Registered directly on the registry after construction
            # (embedding code); adopt it.
            model = self._models[name] = self.registry.get(name).model
        return model

    def _live_models(self) -> Dict[str, SpplModel]:
        """The served map, first adopting any direct registry additions
        (so stats/clear cover models registered after construction even
        before their first query)."""
        for name in self.registry.names():
            if name not in self._models:
                self._models[name] = self.registry.get(name).model
        return self._models

    def route(self, model: str, condition: Optional[str]) -> int:
        return 0

    async def register_model(self, name: str, registered) -> None:
        """Install a live model (shares the registry's object; no round trip)."""
        self._models[name] = registered.model
        self._result_caches[name] = ResultCache()

    async def unregister_model(self, name: str) -> None:
        self._models.pop(name, None)
        self._result_caches.pop(name, None)

    async def run_batch(
        self, model: str, kind: str, condition: Optional[str], shard: int,
        payloads: Sequence,
    ) -> List[Result]:
        live = self._model(model)
        if live is None:
            from .registry import RegistryError

            return wire.error_results(
                RegistryError("Model %r is not being served." % (model,)),
                len(payloads),
            )
        loop = asyncio.get_running_loop()
        # Contextvars do not cross run_in_executor: capture the active
        # trace here, on the loop, and hand it through explicitly.
        tracer = obs.current()
        async with self._semaphore:
            return await loop.run_in_executor(
                None, evaluate_batch, live, kind, condition, payloads,
                self._result_cache(model), tracer,
            )

    def stats_sync(self) -> Dict:
        """Loop-owned stats, collected without awaiting (one atomic pass).

        respawns/requeued_batches keep the stats shape uniform with the
        sharded backend; an in-process backend has nothing to respawn.
        """
        stats = {}
        live = self._live_models()
        for name in sorted(live):
            stats[name] = live[name].cache_stats()
            stats[name]["results"] = self._result_cache(name).stats()
            compiled = live[name].compiled_info()
            if compiled is not None:
                stats[name]["compiled"] = compiled
        return {
            "mode": "in-process",
            "respawns": 0,
            "requeued_batches": 0,
            "models": stats,
        }

    async def stats(self) -> Dict:
        return self.stats_sync()

    async def clear_caches(self) -> None:
        for model in self._live_models().values():
            model.clear_cache(everything=True)
            model.clear_event_cache()
        for cache in self._result_caches.values():
            cache.clear()

    async def close(self) -> None:
        pass


class _PendingBatch:
    __slots__ = ("requests", "futures", "spans", "timer", "flushed", "batch_id")

    def __init__(self, batch_id: int):
        self.requests: List = []
        self.futures: List[asyncio.Future] = []
        # Per-request queue-wait spans (None for untraced requests),
        # parallel to ``requests``; closed when the batch launches.
        self.spans: List = []
        self.timer = None
        self.flushed = False
        self.batch_id = batch_id


class MicroBatcher:
    """Group concurrent requests by batch key and dispatch to a backend.

    ``max_queued_per_key`` bounds the number of **admitted but
    unanswered** requests per batch key (pending in a group or in a
    batch the backend is evaluating).  A request arriving at a full key
    is shed immediately with :class:`OverloadedError` — queues stay
    bounded under overload instead of growing without limit — and
    counted in ``shed_requests``.  ``None`` disables the bound.

    ``max_queued_per_tenant`` adds **fair-share admission** across
    tenants: every tenant gets the same queued-slot quota, accounted
    across all of its batch keys, and a tenant at its quota sheds with
    the same adaptive ``retry_after_ms`` while every other tenant's
    admission is untouched — a noisy neighbor saturates only its own
    share of the queue space, never the fleet.  Per-tenant sheds are
    counted in ``tenant_sheds`` (exported as labeled metrics samples).

    Per-request latency (submit to response, including queue wait) is
    recorded into one :class:`~repro.serve.wire.LatencyHistogram` per
    query kind: two ``loop.time()`` reads and an integer bucket bump per
    request, so observability costs next to nothing on the hot path.
    """

    def __init__(
        self,
        backend,
        window: float = 0.002,
        max_batch: int = 256,
        max_queued_per_key: Optional[int] = DEFAULT_MAX_QUEUED_PER_KEY,
        metrics: Optional[MetricsRegistry] = None,
        max_queued_per_tenant: Optional[int] = None,
    ):
        if max_batch < 1:
            raise ValueError("max_batch must be positive.")
        if window < 0:
            raise ValueError("window must be non-negative.")
        if max_queued_per_key is not None and max_queued_per_key < 1:
            raise ValueError("max_queued_per_key must be positive or None.")
        if max_queued_per_tenant is not None and max_queued_per_tenant < 1:
            raise ValueError("max_queued_per_tenant must be positive or None.")
        self.backend = backend
        self.window = window
        self.max_batch = max_batch
        self.max_queued_per_key = max_queued_per_key
        self.max_queued_per_tenant = max_queued_per_tenant
        self._pending: Dict[tuple, _PendingBatch] = {}
        # Counters are registry instruments (single-threaded: only
        # touched on the event loop); the old plain-int attributes stay
        # readable through the property shims below.
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._requests = self.metrics.counter("repro.scheduler.requests")
        self._batches = self.metrics.counter("repro.scheduler.batches")
        self._no_batch = self.metrics.counter(
            "repro.scheduler.no_batch_requests"
        )
        self._shed = self.metrics.counter("repro.scheduler.shed_requests")
        self._tenant_shed = self.metrics.counter(
            "repro.scheduler.tenant_shed_requests"
        )
        self._largest = self.metrics.gauge("repro.scheduler.largest_batch")
        self.metrics.gauge_fn(
            "repro.scheduler.queued", lambda: sum(self._queued.values())
        )
        self.metrics.gauge_fn(
            "repro.scheduler.tenants_queued", lambda: len(self._queued_tenants)
        )
        self._batch_seq = 0
        self._queued: Dict[tuple, int] = {}
        self._queued_tenants: Dict[str, int] = {}
        #: Per-tenant quota-shed counts (tenant name -> sheds), the
        #: noisy-neighbor audit trail; rendered as labeled samples on
        #: ``GET /metrics`` and in the stats endpoint.
        self.tenant_sheds: Dict[str, int] = {}
        self._inflight_models: Dict[str, int] = {}
        self._latency: Dict[str, LatencyHistogram] = {}

    # Back-compatible attribute reads for the migrated counters.

    @property
    def requests(self) -> int:
        return self._requests.value

    @property
    def batches(self) -> int:
        return self._batches.value

    @property
    def largest_batch(self) -> int:
        return self._largest.value

    @property
    def no_batch_requests(self) -> int:
        return self._no_batch.value

    @property
    def shed_requests(self) -> int:
        return self._shed.value

    @property
    def tenant_shed_requests(self) -> int:
        return self._tenant_shed.value

    def queued_for_tenant(self, tenant: str) -> int:
        """Admitted-but-unanswered request count against one tenant."""
        return self._queued_tenants.get(tenant, 0)

    def inflight(self, model: str) -> int:
        """Admitted-but-unanswered request count against one model."""
        return self._inflight_models.get(model, 0)

    def retry_after_ms(self, kind: Optional[str] = None) -> int:
        """Adaptive advisory back-off for a shed request of ``kind``.

        Derived from the live latency histograms and the current queue
        depth via :func:`~repro.serve.wire.compute_retry_after_ms`: a
        loaded service advises roughly one p95 latency (stretched by how
        full the queues are), so client retries land after the backlog
        they would have joined has drained.  ``kind=None`` (or a kind
        with no observations yet, e.g. a connection-level shed before the
        request line was parsed) falls back on the slowest observed kind;
        with no latency data at all the static :data:`RETRY_AFTER_MS`
        floor applies.
        """
        histogram = self._latency.get(kind) if kind is not None else None
        if histogram is None or not histogram.count:
            observed = [h for h in self._latency.values() if h.count]
            if not observed:
                return RETRY_AFTER_MS
            p95_s = max(h.quantile(0.95) for h in observed)
        else:
            p95_s = histogram.quantile(0.95)
        utilization = 0.0
        if self.max_queued_per_key:
            utilization = sum(self._queued.values()) / float(self.max_queued_per_key)
        return wire.compute_retry_after_ms(p95_s, utilization)

    async def submit(self, request: "wire.Request") -> Result:
        """Submit one request; resolves with its backend result.

        Raises :class:`OverloadedError` (without queueing the request)
        when the target batch key is at ``max_queued_per_key``.
        """
        loop = asyncio.get_running_loop()
        # Sessions route on their affinity key (stable as the chain
        # grows), everything else on the condition text — either way a
        # posterior chain stays pinned to one cache-warm shard.
        route_key = request.affinity
        if route_key is None:
            route_key = wire.condition_key(request.condition)
        shard = self.backend.route(request.model, route_key)
        key = (request.model, request.kind, request.condition, shard)
        tenant = request.tenant
        tenant_queued = self._queued_tenants.get(tenant, 0)
        if (
            self.max_queued_per_tenant is not None
            and tenant_queued >= self.max_queued_per_tenant
        ):
            # Fair-share admission: this tenant's slots are spoken for;
            # other tenants' admission is untouched.
            self._shed.inc()
            self._tenant_shed.inc()
            self.tenant_sheds[tenant] = self.tenant_sheds.get(tenant, 0) + 1
            raise OverloadedError(
                "Tenant %r is at its queue quota (%d queued)."
                % (tenant, tenant_queued),
                retry_after_ms=self.retry_after_ms(request.kind),
            )
        queued = self._queued.get(key, 0)
        if self.max_queued_per_key is not None and queued >= self.max_queued_per_key:
            self._shed.inc()
            raise OverloadedError(
                "Batch key %r is at its queue bound (%d queued)."
                % (key[:3], queued),
                retry_after_ms=self.retry_after_ms(request.kind),
            )
        future = loop.create_future()
        self._requests.inc()
        self._queued[key] = queued + 1
        self._queued_tenants[tenant] = tenant_queued + 1
        self._inflight_models[request.model] = (
            self._inflight_models.get(request.model, 0) + 1
        )
        start = loop.time()
        try:
            if request.no_batch:
                self._no_batch.inc()
                pending = self._new_pending()
                self._enqueue(pending, request, future, shard)
                self._launch(key, pending)
            else:
                pending = self._pending.get(key)
                if pending is None:
                    pending = self._new_pending()
                    self._pending[key] = pending
                    pending.timer = loop.call_later(
                        self.window, self._flush, key, pending
                    )
                self._enqueue(pending, request, future, shard)
                if len(pending.requests) >= self.max_batch:
                    self._flush(key, pending)
            result = await future
        finally:
            self._decrement(self._queued, key)
            self._decrement(self._queued_tenants, tenant)
            self._decrement(self._inflight_models, request.model)
        histogram = self._latency.get(request.kind)
        if histogram is None:
            histogram = self._latency[request.kind] = LatencyHistogram()
            self.metrics.histogram(
                "repro.scheduler.latency." + request.kind, histogram
            )
        histogram.record(loop.time() - start)
        return result

    def _new_pending(self) -> _PendingBatch:
        self._batch_seq += 1
        return _PendingBatch(self._batch_seq)

    @staticmethod
    def _enqueue(pending: _PendingBatch, request, future, shard: int) -> None:
        pending.requests.append(request)
        pending.futures.append(future)
        if isinstance(request.trace, Trace):
            pending.spans.append(
                request.trace.start_span(
                    "scheduler.queue",
                    model=request.model,
                    kind=request.kind,
                    shard=shard,
                )
            )
        else:
            pending.spans.append(None)

    @staticmethod
    def _decrement(counts: Dict, key) -> None:
        remaining = counts.get(key, 0) - 1
        if remaining > 0:
            counts[key] = remaining
        else:
            counts.pop(key, None)

    def _flush(self, key: tuple, pending: _PendingBatch) -> None:
        if pending.flushed:
            return
        pending.flushed = True
        if pending.timer is not None:
            pending.timer.cancel()
        if self._pending.get(key) is pending:
            del self._pending[key]
        self._launch(key, pending)

    def _launch(self, key: tuple, pending: _PendingBatch) -> None:
        self._batches.inc()
        self._largest.max(len(pending.requests))
        asyncio.ensure_future(self._run(key, pending))

    async def _run(self, key: tuple, pending: _PendingBatch) -> None:
        model, kind, condition, shard = key
        payloads = [request.payload for request in pending.requests]
        # Queue wait ends when the batch launches; each traced member's
        # queue span records which batch it was coalesced into.
        for qspan in pending.spans:
            if qspan is not None:
                qspan.annotate(batch_id=pending.batch_id,
                               batch_size=len(payloads))
                qspan.finish()
        batch_trace = None
        if any(span is not None for span in pending.spans):
            batch_trace = Trace(
                name="batch",
                tags={
                    "batch_id": pending.batch_id,
                    "model": model,
                    "kind": kind,
                    "shard": shard,
                    "n": len(payloads),
                },
            )
        # ALWAYS activate — even with None.  This task inherited the
        # contextvars of whichever request scheduled the flush timer, so
        # an untraced batch must clear that bystander's tracer rather
        # than attach batch spans to an unrelated request.
        with obs.activate(batch_trace):
            try:
                results = await self.backend.run_batch(
                    model, kind, condition, shard, payloads
                )
                if len(results) != len(payloads):
                    raise RuntimeError(
                        "Backend returned %d results for a %d-request batch."
                        % (len(results), len(payloads))
                    )
            except Exception as error:
                results = wire.error_results(error, len(payloads))
        if batch_trace is not None:
            payload = batch_trace.to_payload()
            for request, qspan in zip(pending.requests, pending.spans):
                if qspan is not None:
                    request.trace.graft(payload)
        for future, result in zip(pending.futures, results):
            if not future.done():
                future.set_result(result)

    async def drain(self) -> None:
        """Flush every pending group immediately (used at shutdown)."""
        for key, pending in list(self._pending.items()):
            self._flush(key, pending)

    def stats(self) -> Dict:
        """Coalescing, shedding, and latency statistics for the stats endpoint."""
        return {
            "requests": self.requests,
            "batches": self.batches,
            "largest_batch": self.largest_batch,
            "no_batch_requests": self.no_batch_requests,
            "shed": self.shed_requests,
            "tenant_shed": self.tenant_shed_requests,
            "tenant_sheds": dict(sorted(self.tenant_sheds.items())),
            "queued": sum(self._queued.values()),
            "queued_by_tenant": dict(sorted(self._queued_tenants.items())),
            "max_queued_per_tenant": self.max_queued_per_tenant,
            "mean_batch_size": round(self.requests / self.batches, 2)
            if self.batches
            else 0.0,
            "window_s": self.window,
            "max_batch": self.max_batch,
            "max_queued_per_key": self.max_queued_per_key,
            "latency": {
                kind: histogram.summary()
                for kind, histogram in sorted(self._latency.items())
            },
            # The back-off a request shed right now would be advised:
            # per observed kind, plus the kind-agnostic value used for
            # connection-level sheds.
            "retry_after_ms": dict(
                {"any": self.retry_after_ms()},
                **{kind: self.retry_after_ms(kind) for kind in sorted(self._latency)},
            ),
        }
