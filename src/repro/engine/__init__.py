"""High-level modelling and inference API (the workflow of Fig. 1)."""

from ..spe import QueryCache
from ..spe import ZeroProbabilityError
from .model import ChainBoundError
from .model import PosteriorChain
from .model import SpplModel
from .model import parse_event

__all__ = [
    "ChainBoundError",
    "PosteriorChain",
    "QueryCache",
    "SpplModel",
    "ZeroProbabilityError",
    "parse_event",
]
