"""Structural deduplication of sum-product expressions (Sec. 5.1, Fig. 6b).

When a translated expression contains identical sub-expressions that cannot
be factored out without violating the scope conditions, the optimizer
resolves them into a single physical node shared by every parent.  Sharing
is detected bottom-up with structural keys, after which parents refer to the
interned child objects; all inference algorithms already memoize on node
identity, so deduplication directly reduces both memory and repeated
computation.
"""

from __future__ import annotations

from typing import Dict
from typing import Tuple

from ..distributions import AtomicDistribution
from ..distributions import DiscreteDistribution
from ..distributions import DiscreteFinite
from ..distributions import Distribution
from ..distributions import NominalDistribution
from ..distributions import RealDistribution
from .base import SPE
from .leaf import Leaf
from .product_node import ProductSPE
from .sum_node import SumSPE


def distribution_key(dist: Distribution) -> Tuple:
    """A structural key identifying a primitive distribution."""
    if isinstance(dist, AtomicDistribution):
        return ("atomic", dist.value)
    if isinstance(dist, NominalDistribution):
        return ("nominal", tuple(sorted(dist.probabilities.items())))
    if isinstance(dist, DiscreteFinite):
        return ("finite", tuple(sorted(dist.probabilities.items())))
    if isinstance(dist, (RealDistribution, DiscreteDistribution)):
        frozen = dist.dist
        return (
            "scipy",
            type(dist).__name__,
            frozen.dist.name,
            tuple(frozen.args),
            tuple(sorted(frozen.kwds.items())),
            dist.lo,
            dist.hi,
        )
    return ("id", id(dist))


def node_key(node: SPE, child_ids: Tuple[int, ...]) -> Tuple:
    """A structural key for a node given the identities of its (interned) children."""
    if isinstance(node, Leaf):
        env_key = tuple(sorted((k, v._key()) for k, v in node.env.items()))
        return ("leaf", node.symbol, distribution_key(node.dist), env_key)
    if isinstance(node, SumSPE):
        return ("sum", tuple(zip(child_ids, node.log_weights)))
    if isinstance(node, ProductSPE):
        return ("product", tuple(sorted(child_ids)))
    return ("id", id(node))


def deduplicate(spe: SPE) -> SPE:
    """Return an equivalent expression with identical subtrees merged.

    The result is semantically identical to the input (same distribution);
    only the amount of structure sharing changes.
    """
    interned: Dict[Tuple, SPE] = {}
    rebuilt: Dict[int, SPE] = {}

    def visit(node: SPE) -> SPE:
        if id(node) in rebuilt:
            return rebuilt[id(node)]
        children = [visit(child) for child in node.children_nodes()]
        child_ids = tuple(id(child) for child in children)
        key = node_key(node, child_ids)
        if key in interned:
            result = interned[key]
        else:
            if isinstance(node, Leaf):
                result = node
            elif isinstance(node, SumSPE):
                result = SumSPE(children, node.log_weights)
            elif isinstance(node, ProductSPE):
                result = ProductSPE(children)
            else:
                result = node
            interned[key] = result
        rebuilt[id(node)] = result
        return result

    return visit(spe)
