"""Tests for derived exact queries (moments, entropy, mutual information, DOT)."""

import math

import pytest

from repro.distributions import atomic
from repro.distributions import bernoulli
from repro.distributions import binomial
from repro.distributions import choice
from repro.distributions import normal
from repro.distributions import poisson
from repro.distributions import uniform
from repro.engine import SpplModel
from repro.spe import Leaf
from repro.spe import cdf_table
from repro.spe import entropy
from repro.spe import expectation
from repro.spe import marginal_support
from repro.spe import mutual_information
from repro.spe import probability_table
from repro.spe import spe_product
from repro.spe import spe_sum
from repro.spe import to_dot
from repro.spe import variance
from repro.transforms import Id

X = Id("X")
Y = Id("Y")


class TestMoments:
    def test_expectation_of_uniform(self):
        assert expectation(Leaf("X", uniform(0, 4)), "X") == pytest.approx(2.0)

    def test_variance_of_uniform(self):
        assert variance(Leaf("X", uniform(0, 12)), "X") == pytest.approx(12.0)

    def test_expectation_of_normal_and_poisson(self):
        assert expectation(Leaf("X", normal(3, 2)), "X") == pytest.approx(3.0, abs=1e-6)
        assert expectation(Leaf("K", poisson(4)), "K") == pytest.approx(4.0, abs=1e-6)
        assert variance(Leaf("K", poisson(4)), "K") == pytest.approx(4.0, abs=1e-3)

    def test_expectation_of_finite_and_atom(self):
        assert expectation(Leaf("K", bernoulli(0.25)), "K") == pytest.approx(0.25)
        assert expectation(Leaf("A", atomic(7)), "A") == pytest.approx(7.0)
        assert variance(Leaf("A", atomic(7)), "A") == pytest.approx(0.0)

    def test_expectation_of_mixture(self):
        model = spe_sum(
            [Leaf("X", uniform(0, 2)), Leaf("X", uniform(10, 12))],
            [math.log(0.5), math.log(0.5)],
        )
        assert expectation(model, "X") == pytest.approx(6.0)

    def test_expectation_in_product(self):
        model = spe_product([Leaf("X", uniform(0, 2)), Leaf("K", binomial(10, 0.5))])
        assert expectation(model, "K") == pytest.approx(5.0, abs=1e-6)

    def test_expectation_of_truncated_normal(self):
        truncated = Leaf("X", normal(0, 1)).condition(X > 0)
        assert expectation(truncated, "X") == pytest.approx(
            math.sqrt(2.0 / math.pi), abs=1e-4
        )

    def test_expectation_of_nominal_rejected(self):
        with pytest.raises(ValueError):
            expectation(Leaf("N", choice({"a": 1.0})), "N")

    def test_unknown_variable_rejected(self):
        with pytest.raises(KeyError):
            expectation(Leaf("X", uniform(0, 1)), "Q")


class TestTablesAndEntropy:
    def test_probability_table(self):
        model = Leaf("K", bernoulli(0.25))
        table = probability_table(model, "K", [0, 1])
        assert table[0] == pytest.approx(0.75)
        assert table[1] == pytest.approx(0.25)

    def test_cdf_table_monotone(self):
        model = Leaf("X", normal(0, 1))
        table = cdf_table(model, "X", [-2, -1, 0, 1, 2])
        values = [table[g] for g in sorted(table)]
        assert values == sorted(values)
        assert table[0.0] == pytest.approx(0.5)

    def test_entropy_of_fair_choice(self):
        model = Leaf("N", choice({"a": 0.5, "b": 0.5}))
        assert entropy(model, "N", ["a", "b"]) == pytest.approx(math.log(2))

    def test_entropy_requires_exhaustive_values(self):
        model = Leaf("N", choice({"a": 0.5, "b": 0.5}))
        with pytest.raises(ValueError):
            entropy(model, "N", ["a"])

    def test_marginal_support(self):
        model = spe_sum(
            [Leaf("K", bernoulli(0.2)), Leaf("K", atomic(5))],
            [math.log(0.5), math.log(0.5)],
        )
        assert marginal_support(model, "K") == [0.0, 1.0, 5.0]

    def test_marginal_support_nominal(self):
        model = Leaf("N", choice({"b": 0.5, "a": 0.5}))
        assert marginal_support(model, "N") == ["a", "b"]

    def test_marginal_support_continuous_rejected(self):
        with pytest.raises(ValueError):
            marginal_support(Leaf("X", normal(0, 1)), "X")


class TestMutualInformation:
    def test_independent_events_have_zero_information(self):
        model = spe_product([Leaf("X", uniform(0, 1)), Leaf("Y", uniform(0, 1))])
        assert mutual_information(model, X < 0.5, Y < 0.5) == pytest.approx(0.0, abs=1e-9)

    def test_identical_events_give_entropy(self):
        model = Leaf("X", uniform(0, 1))
        value = mutual_information(model, X < 0.5, X < 0.5)
        assert value == pytest.approx(math.log(2), abs=1e-9)

    def test_dependent_events_are_positive(self):
        model = SpplModel.from_source(
            """
X ~ uniform(0, 1)
if X < 0.5:
    Y ~ bernoulli(p=0.9)
else:
    Y ~ bernoulli(p=0.1)
"""
        )
        value = model.mutual_information(X < 0.5, Id("Y") == 1)
        assert value > 0.1


class TestModelConvenienceApi:
    @pytest.fixture(scope="class")
    def model(self):
        return SpplModel.from_source(
            """
X ~ uniform(0, 4)
K ~ bernoulli(p=0.3)
"""
        )

    def test_expectation_and_variance(self, model):
        assert model.expectation("X") == pytest.approx(2.0)
        assert model.variance("K") == pytest.approx(0.21)

    def test_probability_and_cdf_tables(self, model):
        assert model.probability_table("K", [0, 1])[1] == pytest.approx(0.3)
        assert model.cdf_table("X", [2.0])[2.0] == pytest.approx(0.5)

    def test_entropy_and_support(self, model):
        assert model.support("K") == [0.0, 1.0]
        assert model.entropy("K", [0, 1]) == pytest.approx(
            -(0.3 * math.log(0.3) + 0.7 * math.log(0.7))
        )

    def test_to_dot_output(self, model):
        dot = model.to_dot()
        assert dot.startswith("digraph")
        assert "X ~" in dot and "K ~" in dot


class TestDotRendering:
    def test_shared_nodes_rendered_once(self):
        shared = Leaf("Y", bernoulli(0.5))
        model = spe_sum(
            [
                spe_product([Leaf("X", uniform(0, 1)), shared]),
                spe_product([Leaf("X", uniform(2, 3)), shared]),
            ],
            [math.log(0.5), math.log(0.5)],
        )
        dot = to_dot(model)
        assert dot.count("Y ~ DiscreteFinite") == 1
        assert dot.count("shape=circle") >= 3
