"""Registry-journal durability tests: replay, corruption, compaction.

The journal is the write-ahead log of the dynamic model lifecycle.  These
tests pin its WAL discipline: a torn tail (crash mid-append) is dropped
cleanly at the last valid record, replay + restore is idempotent, a
payload whose recomputed digest mismatches the journaled one is refused,
and unregister-heavy churn triggers compaction without changing the net
state.
"""

import json

import pytest

from repro.engine import SpplModel
from repro.serve import JournalError
from repro.serve import ModelRegistry
from repro.serve import RegistryJournal
from repro.workloads import indian_gpa


@pytest.fixture()
def registered_spec():
    """A real registered model's journal-ready spec (payload + digest)."""
    registry = ModelRegistry()
    registered = registry.register_catalog("indian_gpa")
    return registered


def journal_at(tmp_path, **kwargs):
    return RegistryJournal(tmp_path / "registry.journal", **kwargs)


class TestReplayBasics:
    def test_missing_file_replays_empty(self, tmp_path):
        journal = journal_at(tmp_path)
        assert journal.replay() == {}
        assert journal.stats()["events"] == 0

    def test_register_then_unregister_nets_out(self, tmp_path, registered_spec):
        journal = journal_at(tmp_path)
        journal.record_register(registered_spec)
        assert set(journal.replay()) == {"indian_gpa"}
        journal.record_unregister("indian_gpa")
        journal.close()
        assert RegistryJournal(journal.path).replay() == {}

    def test_restore_rebuilds_a_queryable_model(self, tmp_path, registered_spec):
        journal = journal_at(tmp_path)
        journal.record_register(registered_spec)
        journal.close()

        registry = ModelRegistry()
        restored = RegistryJournal(journal.path).restore(registry)
        assert restored == ["indian_gpa"]
        # Bit-identical to a freshly built model, no tolerance.
        assert registry.get("indian_gpa").model.logprob("GPA > 3") == \
            indian_gpa.model().logprob("GPA > 3")
        assert registry.get("indian_gpa").digest == registered_spec.digest

    def test_cache_budget_survives_the_journal(self, tmp_path, registered_spec):
        registry = ModelRegistry()
        prepared = registry.register("budgeted", registered_spec.model, cache_size=77)
        journal = journal_at(tmp_path)
        journal.record_register(prepared)
        journal.close()

        restored_registry = ModelRegistry()
        RegistryJournal(journal.path).restore(restored_registry)
        assert restored_registry.get("budgeted").cache_size == 77


class TestDoubleReplayIdempotence:
    def test_restore_twice_into_one_registry(self, tmp_path, registered_spec):
        journal = journal_at(tmp_path)
        journal.record_register(registered_spec)
        journal.close()

        registry = ModelRegistry()
        reopened = RegistryJournal(journal.path)
        assert reopened.restore(registry) == ["indian_gpa"]
        model_before = registry.get("indian_gpa").model
        # Second replay + restore: a no-op, not a duplicate-name error,
        # and the live model object is untouched.
        reopened.replay()
        assert reopened.restore(registry) == []
        assert registry.get("indian_gpa").model is model_before

    def test_startup_flags_win_over_the_journal(self, tmp_path, registered_spec):
        journal = journal_at(tmp_path)
        journal.record_register(registered_spec)
        journal.close()

        registry = ModelRegistry()
        startup = registry.register_catalog("indian_gpa")
        assert RegistryJournal(journal.path).restore(registry) == []
        assert registry.get("indian_gpa") is startup


class TestCorruption:
    def test_truncated_last_line_stops_at_last_valid_entry(
        self, tmp_path, registered_spec
    ):
        journal = journal_at(tmp_path)
        journal.record_register(registered_spec)
        journal.close()
        # Crash mid-append: a second record with its tail sheared off.
        with open(journal.path, "ab") as handle:
            torn = json.dumps({"op": "unregister", "name": "indian_gpa"})
            handle.write(torn[: len(torn) // 2].encode("utf-8"))

        reopened = RegistryJournal(journal.path)
        live = reopened.replay()
        # The torn unregister never happened; the register survives and
        # the service still boots from it.
        assert set(live) == {"indian_gpa"}
        assert reopened.truncated_bytes > 0
        registry = ModelRegistry()
        assert reopened.restore(registry) == ["indian_gpa"]
        assert registry.get("indian_gpa").model.logprob("GPA > 3") == \
            indian_gpa.model().logprob("GPA > 3")

    def test_append_after_torn_tail_lands_on_a_record_boundary(
        self, tmp_path, registered_spec
    ):
        journal = journal_at(tmp_path)
        journal.record_register(registered_spec)
        journal.close()
        with open(journal.path, "ab") as handle:
            handle.write(b'{"op": "unregister", "na')

        reopened = RegistryJournal(journal.path)
        reopened.replay()
        reopened.record_unregister("indian_gpa")
        reopened.close()
        # The torn bytes were truncated before the append: every line of
        # the file decodes, and the net state reflects the new record.
        lines = journal.path.read_bytes().splitlines()
        assert all(json.loads(line) for line in lines)
        assert RegistryJournal(journal.path).replay() == {}

    def test_garbage_line_stops_replay_there(self, tmp_path, registered_spec):
        journal = journal_at(tmp_path)
        journal.record_register(registered_spec)
        journal.close()
        with open(journal.path, "ab") as handle:
            handle.write(b"not json at all\n")
            handle.write(b'{"op": "unregister", "name": "indian_gpa"}\n')

        # WAL convention: nothing after the first bad record is trusted,
        # so the (valid-looking) unregister behind it is discarded too.
        live = RegistryJournal(journal.path).replay()
        assert set(live) == {"indian_gpa"}

    def test_digest_mismatch_refuses_to_restore(self, tmp_path, registered_spec):
        journal = journal_at(tmp_path)
        journal.record_register(registered_spec)
        journal.close()
        # Tamper: swap the journaled digest for a lie.
        line = json.loads(journal.path.read_text())
        line["digest"] = "0" * len(line["digest"])
        journal.path.write_text(json.dumps(line) + "\n")

        with pytest.raises(JournalError, match="digest"):
            RegistryJournal(journal.path).restore(ModelRegistry())


class TestCompaction:
    def test_unregister_churn_triggers_compaction(self, tmp_path, registered_spec):
        journal = journal_at(tmp_path, compact_min_dead=4)
        for _ in range(8):
            journal.record_register(registered_spec)
            journal.record_unregister("indian_gpa")
        journal.record_register(registered_spec)
        assert journal.compactions >= 2
        journal.close()

        # 17 lifecycle events hit the disk, but compaction keeps the file
        # bounded by the records since the last rewrite -- and the net
        # state is intact.
        lines = journal.path.read_bytes().splitlines()
        assert len(lines) < 17
        reopened = RegistryJournal(journal.path)
        assert set(reopened.replay()) == {"indian_gpa"}

    def test_compaction_preserves_restorability(self, tmp_path, registered_spec):
        journal = journal_at(tmp_path, compact_min_dead=2)
        journal.record_register(registered_spec)
        journal.record_unregister("indian_gpa")
        journal.record_register(registered_spec)
        journal.close()

        registry = ModelRegistry()
        RegistryJournal(journal.path).restore(registry)
        assert registry.get("indian_gpa").model.logprob("GPA > 3") == \
            indian_gpa.model().logprob("GPA > 3")

    def test_compaction_to_empty(self, tmp_path, registered_spec):
        journal = journal_at(tmp_path, compact_min_dead=2)
        journal.record_register(registered_spec)
        journal.record_unregister("indian_gpa")
        assert journal.compactions >= 1
        journal.close()
        assert journal.path.read_bytes() == b""
        assert RegistryJournal(journal.path).replay() == {}


class TestJournalStats:
    def test_stats_shape(self, tmp_path, registered_spec):
        journal = journal_at(tmp_path)
        journal.record_register(registered_spec)
        stats = journal.stats()
        assert stats["live"] == 1
        assert stats["dead"] == 0
        assert stats["events"] == 1
        assert stats["compactions"] == 0
        assert stats["path"].endswith("registry.journal")
        journal.close()


class TestPayloadRegistration:
    def test_serialized_payload_round_trips_through_the_journal(self, tmp_path):
        """A model registered from a to_json payload (not the catalog)
        survives the journal with its digest intact."""
        registry = ModelRegistry()
        model = SpplModel.from_json(indian_gpa.model().to_json())
        registered = registry.register("from_payload", model)
        journal = journal_at(tmp_path)
        journal.record_register(registered)
        journal.close()

        restored_registry = ModelRegistry()
        RegistryJournal(journal.path).restore(restored_registry)
        assert restored_registry.get("from_payload").payload == registered.payload
        assert restored_registry.get("from_payload").digest == registered.digest


class TestBlobRegistration:
    def test_blob_backed_register_journals_a_path_record(self, tmp_path):
        """With a blob_dir, the journal records the content-addressed
        ``.spz`` path instead of the serialized payload."""
        registry = ModelRegistry(blob_dir=tmp_path / "blobs")
        registered = registry.register_catalog("indian_gpa")
        journal = journal_at(tmp_path)
        journal.record_register(registered)
        journal.close()

        records = [
            json.loads(line)
            for line in journal.path.read_text().splitlines()
            if line.strip()
        ]
        (record,) = [r for r in records if r.get("op") == "register"]
        assert record["path"] == registered.blob_path
        assert "payload" not in record
        assert record["digest"] == registered.digest

    def test_restore_from_blob_is_bit_identical(self, tmp_path):
        registry = ModelRegistry(blob_dir=tmp_path / "blobs")
        registered = registry.register_catalog("indian_gpa")
        journal = journal_at(tmp_path)
        journal.record_register(registered)
        journal.close()

        restored_registry = ModelRegistry()
        restored = RegistryJournal(journal.path).restore(restored_registry)
        assert restored == ["indian_gpa"]
        assert restored_registry.get("indian_gpa").digest == registered.digest
        assert restored_registry.get("indian_gpa").model.logprob("GPA > 3") == \
            indian_gpa.model().logprob("GPA > 3")

    def test_missing_blob_refuses_to_restore(self, tmp_path):
        registry = ModelRegistry(blob_dir=tmp_path / "blobs")
        registered = registry.register_catalog("indian_gpa")
        journal = journal_at(tmp_path)
        journal.record_register(registered)
        journal.close()
        (tmp_path / "blobs" / (registered.digest + ".spz")).unlink()

        with pytest.raises(JournalError, match="cannot be restored from blob"):
            RegistryJournal(journal.path).restore(ModelRegistry())

    def test_tampered_blob_refuses_to_restore(self, tmp_path):
        registry = ModelRegistry(blob_dir=tmp_path / "blobs")
        registered = registry.register_catalog("indian_gpa")
        journal = journal_at(tmp_path)
        journal.record_register(registered)
        journal.close()
        blob_path = tmp_path / "blobs" / (registered.digest + ".spz")
        blob = bytearray(blob_path.read_bytes())
        # Flip a byte inside the canonical payload section (the part the
        # restore path digest-verifies; it starts at the first aligned
        # offset after the reserved header region).
        blob[4096 + 16] ^= 0xFF
        blob_path.write_bytes(bytes(blob))

        with pytest.raises(JournalError, match="cannot be restored from blob"):
            RegistryJournal(journal.path).restore(ModelRegistry())

    def test_compaction_preserves_path_records(self, tmp_path):
        registry = ModelRegistry(blob_dir=tmp_path / "blobs")
        registered = registry.register_catalog("indian_gpa")
        journal = journal_at(tmp_path)
        journal.record_register(registered)
        journal.compact()
        journal.close()

        restored_registry = ModelRegistry()
        restored = RegistryJournal(journal.path).restore(restored_registry)
        assert restored == ["indian_gpa"]
        assert restored_registry.get("indian_gpa").digest == registered.digest
