"""Rendering sum-product expressions as Graphviz DOT source.

The renderer emits plain DOT text (no graphviz dependency); shared
(deduplicated) sub-expressions appear once and are referenced by multiple
parents, so the rendered graph makes the structure sharing of Sec. 5.1
visible, as in Fig. 2d / Fig. 3d of the paper.  The traversal is iterative
and keyed on structural node uids, so arbitrarily deep expressions render
without recursion-depth limits.
"""

from __future__ import annotations

import math
from typing import Dict
from typing import List

from .base import SPE
from .leaf import Leaf
from .product_node import ProductSPE
from .sum_node import SumSPE


def _leaf_label(leaf: Leaf) -> str:
    label = "%s ~ %s" % (leaf.symbol, type(leaf.dist).__name__)
    if leaf.env:
        derived = ", ".join(sorted(leaf.env))
        label += "\\n[%s]" % (derived,)
    return label


def to_dot(spe: SPE, graph_name: str = "spe") -> str:
    """Render an expression graph as Graphviz DOT source text."""
    lines: List[str] = [
        "digraph %s {" % (graph_name,),
        "  node [fontname=\"Helvetica\"];",
    ]
    identifiers: Dict[int, str] = {}
    edges: List[str] = []

    stack: List[SPE] = [spe]
    while stack:
        node = stack.pop()
        if node._uid in identifiers:
            continue
        name = "n%d" % (len(identifiers),)
        identifiers[node._uid] = name
        if isinstance(node, Leaf):
            lines.append(
                '  %s [shape=box, label="%s"];' % (name, _leaf_label(node))
            )
        elif isinstance(node, SumSPE):
            lines.append('  %s [shape=circle, label="+"];' % (name,))
        elif isinstance(node, ProductSPE):
            lines.append('  %s [shape=circle, label="×"];' % (name,))
        else:
            lines.append(
                '  %s [shape=diamond, label="%s"];' % (name, type(node).__name__)
            )
        stack.extend(reversed(node.children_nodes()))

    # Emit edges once every referenced node has a stable name.
    seen = set()
    stack = [spe]
    while stack:
        node = stack.pop()
        if node._uid in seen:
            continue
        seen.add(node._uid)
        name = identifiers[node._uid]
        if isinstance(node, SumSPE):
            for weight, child in zip(node.log_weights, node.children):
                edges.append(
                    '  %s -> %s [label="%.3f"];'
                    % (name, identifiers[child._uid], math.exp(weight))
                )
        elif isinstance(node, ProductSPE):
            for child in node.children:
                edges.append("  %s -> %s;" % (name, identifiers[child._uid]))
        stack.extend(reversed(node.children_nodes()))

    lines.extend(edges)
    lines.append("}")
    return "\n".join(lines) + "\n"
