"""Ablation of the Sec. 5.1 optimizations (design-choice study from DESIGN.md).

Measures, for a structured model (the hierarchical HMM) and a flat model
(the clinical trial), how the expression-graph size and end-to-end query
time change when the two construction-time optimizations are toggled:

* factorization of shared product components out of mixtures (Fig. 6a),
* structural deduplication of identical subtrees (Fig. 6b).

The paper's claim is that the optimizations are what make translation and
inference scale on models with conditional independence and repeated
structure; the ablation quantifies each contribution separately.
"""

import time

import pytest

from repro.compiler import TranslationOptions
from repro.compiler import compile_command
from repro.transforms import Id
from repro.workloads import hmm
from repro.workloads import table1_models

from .conftest import write_results

_CONFIGURATIONS = [
    ("factorize+dedup", TranslationOptions(factorize=True, dedup=True)),
    ("factorize only", TranslationOptions(factorize=True, dedup=False)),
    ("dedup only", TranslationOptions(factorize=False, dedup=True)),
    ("no optimizations", TranslationOptions(factorize=False, dedup=False)),
]

_MODELS = [
    ("Hierarchical HMM (15 steps)", lambda: hmm.program(15), Id("Z[14]") == 1),
    (
        "Clinical Trial",
        table1_models.clinical_trial_table1,
        Id("is_effective") == 1,
    ),
    ("Heart Disease", table1_models.heart_disease, Id("heart_disease") == 1),
]

_ROWS = []


@pytest.mark.parametrize("model_name,builder,query", _MODELS, ids=[m[0] for m in _MODELS])
def test_ablation_of_optimizations(benchmark, model_name, builder, query):
    program = builder()

    def translate_optimized():
        return compile_command(program, _CONFIGURATIONS[0][1])

    benchmark(translate_optimized)

    reference_probability = None
    for configuration_name, options in _CONFIGURATIONS:
        start = time.perf_counter()
        spe = compile_command(program, options)
        translate_seconds = time.perf_counter() - start
        start = time.perf_counter()
        probability = spe.prob(query)
        query_seconds = time.perf_counter() - start
        if reference_probability is None:
            reference_probability = probability
        else:
            assert probability == pytest.approx(reference_probability, abs=1e-9)
        _ROWS.append(
            (model_name, configuration_name, spe.size(), translate_seconds, query_seconds)
        )

    if len(_ROWS) == len(_MODELS) * len(_CONFIGURATIONS):
        lines = ["model | configuration | graph nodes | translate s | query s"]
        for row in _ROWS:
            lines.append("%s | %s | %d | %.3f | %.4f" % row)
        write_results("ablation_optimizations", lines)
