"""Product nodes: tuples of independent sum-product expressions."""

from __future__ import annotations

from typing import Dict
from typing import FrozenSet
from typing import List
from typing import Optional
from typing import Sequence

from ..events import Clause
from ..transforms import Transform
from .base import DensityPair
from .base import Memo
from .base import SPE
from .base import clause_key


class ProductSPE(SPE):
    """A product of sum-product expressions with pairwise-disjoint scopes."""

    def __init__(self, children: Sequence[SPE]):
        children = list(children)
        if len(children) < 2:
            raise ValueError("ProductSPE requires at least two children; use spe_product().")
        scope: FrozenSet[str] = frozenset()
        for child in children:
            overlap = scope & child.scope
            if overlap:
                raise ValueError(
                    "Children of a ProductSPE must have disjoint scopes "
                    "(condition C3); %s appear twice." % (sorted(overlap),)
                )
            scope |= child.scope
        self.children = tuple(children)
        self._scope = scope

    # -- Structure -----------------------------------------------------------

    @property
    def scope(self) -> FrozenSet[str]:
        return self._scope

    def children_nodes(self) -> List[SPE]:
        return list(self.children)

    def __repr__(self) -> str:
        return "ProductSPE(%s)" % (list(self.children),)

    def _restrict(self, clause: Clause) -> Clause:
        return {s: v for s, v in clause.items() if s in self._scope}

    # -- Inference ------------------------------------------------------------

    def logprob_clause(self, clause: Clause, memo: Memo) -> float:
        restricted = self._restrict(clause)
        key = (id(self), clause_key(restricted))
        if key in memo.logprob:
            return memo.logprob[key]
        total = 0.0
        for child in self.children:
            child_clause = {s: v for s, v in restricted.items() if s in child.scope}
            if not child_clause:
                continue
            total += child.logprob_clause(child_clause, memo)
        memo.logprob[key] = total
        return total

    def condition_clause(self, clause: Clause, memo: Memo) -> Optional[SPE]:
        restricted = self._restrict(clause)
        key = (id(self), clause_key(restricted))
        if key in memo.condition:
            return memo.condition[key]
        new_children: List[SPE] = []
        changed = False
        failed = False
        for child in self.children:
            child_clause = {s: v for s, v in restricted.items() if s in child.scope}
            if not child_clause:
                new_children.append(child)
                continue
            conditioned = child.condition_clause(child_clause, memo)
            if conditioned is None:
                failed = True
                break
            changed = changed or (conditioned is not child)
            new_children.append(conditioned)
        if failed:
            result: Optional[SPE] = None
        elif not changed:
            result = self
        else:
            result = spe_product(new_children)
        memo.condition[key] = result
        return result

    def logpdf_pair(self, assignment: Dict[str, object], memo: Memo) -> DensityPair:
        key = (id(self),)
        if key in memo.logpdf:
            return memo.logpdf[key]
        count = 0
        total = 0.0
        for child in self.children:
            child_assignment = {
                s: v for s, v in assignment.items() if s in child.scope
            }
            if not child_assignment:
                continue
            child_count, child_logpdf = child.logpdf_pair(child_assignment, memo)
            count += child_count
            total += child_logpdf
        result = (count, total)
        memo.logpdf[key] = result
        return result

    def constrain_clause(
        self, assignment: Dict[str, object], memo: Memo
    ) -> Optional[SPE]:
        key = (id(self),)
        if key in memo.constrain:
            return memo.constrain[key]
        new_children: List[SPE] = []
        changed = False
        failed = False
        for child in self.children:
            child_assignment = {
                s: v for s, v in assignment.items() if s in child.scope
            }
            if not child_assignment:
                new_children.append(child)
                continue
            constrained = child.constrain_clause(child_assignment, memo)
            if constrained is None:
                failed = True
                break
            changed = changed or (constrained is not child)
            new_children.append(constrained)
        if failed:
            result: Optional[SPE] = None
        elif not changed:
            result = self
        else:
            result = spe_product(new_children)
        memo.constrain[key] = result
        return result

    # -- Derived variables and sampling ---------------------------------------

    def transform(self, symbol: str, expression: Transform) -> SPE:
        if symbol in self._scope:
            raise ValueError("Variable %r is already defined (restriction R1)." % (symbol,))
        free = set(expression.get_symbols())
        owners = [
            i for i, child in enumerate(self.children) if free & set(child.scope)
        ]
        if len(owners) != 1 or not free <= set(self.children[owners[0]].scope):
            raise ValueError(
                "Transform for %r mentions variables %s spanning multiple "
                "independent components; multivariate transforms are ruled "
                "out by restriction (R3)." % (symbol, sorted(free))
            )
        index = owners[0]
        children = list(self.children)
        children[index] = children[index].transform(symbol, expression)
        return ProductSPE(children)

    def sample_assignment(self, rng) -> Dict[str, object]:
        assignment: Dict[str, object] = {}
        for child in self.children:
            assignment.update(child.sample_assignment(rng))
        return assignment


def spe_product(children: Sequence[SPE]) -> SPE:
    """Canonicalizing constructor for products.

    Splices nested products and collapses singleton products.
    """
    flat: List[SPE] = []
    for child in children:
        if isinstance(child, ProductSPE):
            flat.extend(child.children)
        else:
            flat.append(child)
    if not flat:
        raise ValueError("spe_product requires at least one child.")
    if len(flat) == 1:
        return flat[0]
    return ProductSPE(flat)
