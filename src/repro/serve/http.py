"""Asyncio HTTP front-end of the inference service (stdlib only).

A deliberately small HTTP/1.1 server (``asyncio.start_server``; no
third-party web framework) exposing:

* ``POST /v1/query``  -- newline-delimited JSON requests (one or many per
  body); the response body carries one NDJSON line per request, in
  request order.  See :mod:`repro.serve.wire` for the line format.
* ``GET /v1/models``  -- registry description (variables, node counts,
  structural digests, cache budgets).
* ``POST /v1/models/register`` / ``POST /v1/models/unregister`` --
  dynamic model lifecycle on a *running* service: registration ships the
  serialized model to every worker shard and publishes the name only
  after all shards ack the round-trip digest; unregistration rejects new
  queries immediately but drains in-flight ones before teardown.
* ``GET /v1/stats``   -- scheduler coalescing/shed counters, per-kind
  latency percentiles (p50/p95/p99 from log-bucketed histograms), plus
  per-model (or per-shard) exact cache hit/miss/eviction statistics and
  eviction pressure.
* ``POST /v1/clear_cache`` -- drop cached traversal results everywhere
  (all shards, result caches, and parsed-event LRUs); used by benchmarks
  to measure cold-cache behavior.
* ``GET /healthz``    -- liveness.
* ``POST /v1/sessions`` / ``GET /v1/sessions`` /
  ``POST /v1/sessions/<name>/observe`` /
  ``POST /v1/sessions/<name>/{query,predict,logprob,logpdf}`` /
  ``DELETE /v1/sessions/<name>`` -- named streaming posterior sessions:
  each ``observe`` extends the session's condition chain by one exact
  conditioning step (committed only when the backend acks it), queries
  read the current posterior, and the whole chain routes to one
  cache-warm shard via session-affinity keys.  Sessions are namespaced
  per tenant (the ``x-tenant`` header; also the default tenant for
  ``/v1/query`` lines without an explicit ``tenant`` field) and bounded
  by TTL, LRU eviction, and per-tenant quotas — see
  :mod:`repro.serve.sessions`.

Connections are **pipelined**: the reader keeps accepting requests while
earlier ones are still being evaluated, and a writer task sends the
responses back in request order.  This matters for micro-batching -- a
client that writes many requests back-to-back on one connection gets them
coalesced into one batched evaluation, without needing one socket per
in-flight request.

Overload never grows queues without bound: the scheduler sheds requests
past its per-key queue bound (a 429-style NDJSON line carrying
``retry_after_ms``), and a single connection pipelining past
``max_inflight_per_connection`` unwritten responses gets a real HTTP 429.
``retry_after_ms`` is **adaptive**: derived from the live per-kind
latency histograms and the current queue depth (see
:meth:`~repro.serve.scheduler.MicroBatcher.retry_after_ms`), so client
back-off tracks how loaded the service actually is.  Error handling is
per-request wherever framing allows: a malformed NDJSON line or an
oversized (but well-framed) body fails only itself; later pipelined
requests on the same connection are still serviced.

Fault tolerance: with a worker pool, a shard that dies is respawned and
its in-flight batches requeued (see :mod:`repro.serve.sharding`); with a
:class:`~repro.serve.registry.RegistryJournal`, live register/unregister
events are journaled durably and replayed on startup, so dynamically
registered models survive restarts.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import random
from typing import Dict
from typing import List
from typing import Optional
from typing import Tuple

from .. import obs
from ..obs import FlightRecorder
from ..obs import MetricsRegistry
from ..obs import Trace
from . import wire
from .registry import ModelRegistry
from .registry import RegistryError
from .registry import RegistryJournal
from .scheduler import DEFAULT_MAX_QUEUED_PER_KEY
from .scheduler import InProcessBackend
from .scheduler import MicroBatcher
from .scheduler import OverloadedError
from .sessions import DEFAULT_MAX_SESSIONS
from .sessions import SessionError
from .sessions import SessionStore
from .sharding import WorkerError
from .sharding import WorkerPool
from .sharding import WorkerPoolBackend

#: Largest accepted request head (request line + headers) and body.
MAX_HEAD_BYTES = 64 * 1024
MAX_BODY_BYTES = 64 * 1024 * 1024

#: An oversized body up to this size is read and discarded so the
#: connection stays framed (the request alone gets a 400); past it the
#: connection closes rather than drain an unbounded stream.
MAX_DRAIN_BYTES = 2 * MAX_BODY_BYTES

#: Default bound on pipelined requests per connection whose responses
#: have not been written yet; past it a request is shed with an HTTP 429
#: instead of queueing.
DEFAULT_MAX_INFLIGHT_PER_CONNECTION = 512

#: A connection that accumulates this many 429 sheds is closed outright:
#: a peer that keeps pipelining past the bound without reading responses
#: (slow-loris) would otherwise grow the response queue one small shed
#: line at a time.  This caps per-connection memory absolutely.
MAX_SHEDS_PER_CONNECTION = 4096

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    429: "Too Many Requests",
    500: "Internal Server Error",
}


def _response(status: int, body: bytes, content_type: str = "application/x-ndjson") -> bytes:
    head = (
        "HTTP/1.1 %d %s\r\n"
        "Content-Type: %s\r\n"
        "Content-Length: %d\r\n"
        "\r\n" % (status, _REASONS.get(status, "OK"), content_type, len(body))
    )
    return head.encode("ascii") + body


def _json_response(status: int, payload: Dict) -> bytes:
    return _response(
        status,
        (json.dumps(payload, separators=(",", ":")) + "\n").encode("utf-8"),
        content_type="application/json",
    )


class InferenceService:
    """The long-running service: registry + micro-batcher + HTTP front-end.

    ``workers=0`` evaluates in-process (one shard, shared live models);
    ``workers=N`` starts ``N`` worker processes, each holding a
    deserialized copy of every registered model and a private query cache
    (see :mod:`repro.serve.sharding`).  ``nodes=["host:port", ...]``
    additionally joins remote :mod:`repro.serve.node` shards into the
    same consistent-hash ring over TCP (see
    :mod:`repro.serve.transport`); each node entry contributes one shard.
    """

    def __init__(
        self,
        registry: ModelRegistry,
        workers: int = 0,
        window: float = 0.002,
        max_batch: int = 256,
        host: str = "127.0.0.1",
        port: int = 0,
        max_queued_per_key: Optional[int] = DEFAULT_MAX_QUEUED_PER_KEY,
        max_inflight_per_connection: int = DEFAULT_MAX_INFLIGHT_PER_CONNECTION,
        journal: Optional[RegistryJournal] = None,
        trace_sample: float = 0.0,
        slow_query_ms: Optional[float] = None,
        slow_query_log: Optional[str] = None,
        trace_capacity: int = 256,
        nodes: Optional[List[str]] = None,
        probe_interval_ms: float = 1000.0,
        max_queued_per_tenant: Optional[int] = None,
        max_sessions: int = DEFAULT_MAX_SESSIONS,
        session_ttl_s: Optional[float] = None,
        max_sessions_per_tenant: Optional[int] = None,
    ):
        if max_inflight_per_connection < 1:
            raise ValueError(
                "max_inflight_per_connection must be positive (a 0 bound "
                "would shed every request)."
            )
        if not 0.0 <= trace_sample <= 1.0:
            raise ValueError("trace_sample must be in [0, 1].")
        self.registry = registry
        self.workers = workers
        self.host = host
        self.port = port
        self.max_inflight_per_connection = max_inflight_per_connection
        #: Optional durable lifecycle journal: successful live
        #: register/unregister calls are appended (flushed + fsynced)
        #: before the HTTP response acks, so they survive a restart.
        #: Replaying the journal into the registry happens *before*
        #: service construction (see ``repro.serve.__main__``).
        self.journal = journal
        #: One registry for every instrument in this service: scheduler,
        #: pool, HTTP layer, and flight recorder all register their
        #: counters here, and ``GET /metrics`` renders it.
        self.metrics = MetricsRegistry()
        if slow_query_ms is not None and trace_sample == 0.0:
            # A slow-query threshold without an explicit sample rate
            # implies full sampling: an outlier's log line should carry
            # the span tree that explains it.
            trace_sample = 1.0
        self.trace_sample = trace_sample
        self.recorder = FlightRecorder(
            capacity=trace_capacity,
            slow_query_ms=slow_query_ms,
            slow_query_log=slow_query_log,
            metrics=self.metrics,
        )
        self.nodes = list(nodes or [])
        self._pool: Optional[WorkerPool] = None
        if workers > 0 or self.nodes:
            self._pool = WorkerPool(
                workers, metrics=self.metrics, nodes=self.nodes,
                probe_interval_ms=probe_interval_ms,
            )
            self.backend = WorkerPoolBackend(self._pool)
        else:
            self.backend = InProcessBackend(registry)
        self.scheduler = MicroBatcher(
            self.backend,
            window=window,
            max_batch=max_batch,
            max_queued_per_key=max_queued_per_key,
            max_queued_per_tenant=max_queued_per_tenant,
            metrics=self.metrics,
        )
        #: Streaming posterior sessions (front-end state only: the chain
        #: ships with every batch, so shards stay stateless and failover
        #: replays it deterministically).
        self.sessions = SessionStore(
            max_sessions=max_sessions,
            ttl_s=session_ttl_s,
            max_sessions_per_tenant=max_sessions_per_tenant,
            metrics=self.metrics,
        )
        #: Per-session asyncio locks serializing observes (one chain
        #: extension at a time; queries run lock-free against whatever
        #: chain is current).
        self._session_locks: Dict[Tuple[str, str], asyncio.Lock] = {}
        self._server: Optional[asyncio.AbstractServer] = None
        self._connections: set = set()
        #: Dispatch tasks not yet resolved / responses not yet written:
        #: close() drains both before tearing the backend down, so a
        #: SIGTERM mid-batch never drops an accepted request.
        self._inflight: set = set()
        self._pending_responses = 0
        self._connection_sheds = self.metrics.counter(
            "repro.http.connection_sheds"
        )
        self.metrics.gauge_fn(
            "repro.http.pending_responses", lambda: self._pending_responses
        )
        #: Serializes register/unregister so two concurrent lifecycle
        #: calls cannot interleave their worker handshakes.
        self._lifecycle_lock = asyncio.Lock()

    @property
    def connection_sheds(self) -> int:
        """Back-compatible read of the migrated connection-shed counter."""
        return self._connection_sheds.value

    def worker_specs(self) -> Dict[str, Dict]:
        """Per-model specs handed to worker processes.

        Blob-backed models (registry with a ``blob_dir``) ship their
        ``.spz`` path + digest so every shard mmaps one shared physical
        copy; others ship the full serialized payload.
        """
        return {
            name: wire.model_spec(self.registry.get(name))
            for name in self.registry.names()
        }

    # -- Lifecycle ------------------------------------------------------------

    async def start(self) -> Tuple[str, int]:
        """Start workers (if any) and the HTTP listener; returns (host, port)."""
        if self._pool is not None:
            specs = self.worker_specs()
            loop = asyncio.get_running_loop()
            await loop.run_in_executor(None, self._pool.start, specs)
            # Proactive supervision: idle shards are pinged periodically
            # and dead ones respawned before traffic finds them.
            self._pool.start_probing()
        self._server = await asyncio.start_server(
            self._handle_connection, host=self.host, port=self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self.host, self.port

    async def close(self, drain_timeout: float = 10.0) -> None:
        """Graceful shutdown: drain in-flight work, then close everything.

        Ordering matters for the "no dropped answers" guarantee: stop
        accepting, flush every pending micro-batch, wait (bounded by
        ``drain_timeout``) until in-flight dispatches resolve and their
        responses are written to the sockets, and only then cancel the
        connection readers and stop the worker pool.  A request the
        service accepted before SIGTERM gets its answer.
        """
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.scheduler.drain()
        loop = asyncio.get_running_loop()
        deadline = loop.time() + drain_timeout
        while (self._inflight or self._pending_responses) and loop.time() < deadline:
            await asyncio.sleep(0.005)
        for task in list(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.gather(*self._connections, return_exceptions=True)
        await self.scheduler.drain()
        await self.backend.close()
        self.recorder.close()
        if self.journal is not None:
            self.journal.close()

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        await self._server.serve_forever()

    # -- Connection handling --------------------------------------------------

    def _enqueue(self, queue: asyncio.Queue, item) -> None:
        """Queue one response (bytes or a dispatch future) for the writer.

        Synchronous on purpose: the queue is unbounded (boundedness comes
        from the per-connection and per-key backpressure bounds), so
        ``put_nowait`` never blocks and the reader loop pays no extra
        coroutine per pipelined request.
        """
        self._pending_responses += 1
        queue.put_nowait(item)

    async def _handle_connection(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        self._connections.add(asyncio.current_task())
        queue: asyncio.Queue = asyncio.Queue()
        # Dispatched responses accepted on *this* connection whose bytes
        # have not been written yet (mutable cell shared with the writer).
        # Counting until the *write* — not until the dispatch resolves —
        # is what bounds the response queue of a slow-reading client: a
        # peer that stops reading pins the counter at the bound and gets
        # (small, fixed-size) 429 lines instead of queueing evaluated
        # response payloads without limit.
        inflight = [0]
        sheds = 0
        writer_task = asyncio.ensure_future(
            self._write_responses(queue, writer, inflight)
        )
        try:
            while True:
                try:
                    head = await reader.readuntil(b"\r\n\r\n")
                except asyncio.IncompleteReadError:
                    break
                except asyncio.LimitOverrunError:
                    self._enqueue(
                        queue, _json_response(400, {"error": "Request head too large."})
                    )
                    break
                method, path, headers, bad = self._parse_head(head)
                if bad is not None:
                    self._enqueue(queue, _json_response(400, {"error": bad}))
                    break
                close_requested = headers.get("connection", "").lower() == "close"
                try:
                    length = int(headers.get("content-length", "0"))
                except ValueError:
                    length = -1
                if length < 0:
                    # Unparseable or negative: the request framing is
                    # unknowable, so this connection cannot be saved.
                    self._enqueue(
                        queue, _json_response(400, {"error": "Bad Content-Length."})
                    )
                    break
                if length > MAX_BODY_BYTES:
                    # Oversized but well-framed: discard the body so the
                    # next pipelined request on this connection still
                    # parses, and fail only this one.
                    if length > MAX_DRAIN_BYTES:
                        self._enqueue(
                            queue, _json_response(400, {"error": "Body too large."})
                        )
                        break
                    remaining = length
                    while remaining:
                        chunk = await reader.read(min(65536, remaining))
                        if not chunk:
                            raise ConnectionError("EOF inside oversized body")
                        remaining -= len(chunk)
                    self._enqueue(
                        queue,
                        _json_response(
                            400,
                            {"error": "Body too large (%d > %d bytes)."
                             % (length, MAX_BODY_BYTES)},
                        ),
                    )
                    # These 400 lines bypass dispatch, so they must spend
                    # the same budget as sheds: a non-reading peer
                    # pipelining oversized bodies cannot grow the queue.
                    sheds += 1
                    if close_requested or sheds >= MAX_SHEDS_PER_CONNECTION:
                        break
                    continue
                body = await reader.readexactly(length) if length else b""
                if inflight[0] >= self.max_inflight_per_connection:
                    # Per-connection backpressure: the pipeline is full,
                    # shed with a real 429 instead of queueing responses
                    # without bound.  Applies to every dispatched path:
                    # any pipelined request holds response-queue memory
                    # until its reply is written.
                    self._connection_sheds.inc()
                    sheds += 1
                    self._enqueue(
                        queue,
                        _json_response(
                            429,
                            wire.overloaded_response(
                                None, self.scheduler.retry_after_ms()
                            ),
                        ),
                    )
                    if close_requested or sheds >= MAX_SHEDS_PER_CONNECTION:
                        # A peer accumulating thousands of sheds is not
                        # backing off (and may not be reading at all):
                        # even the small shed lines must not grow the
                        # queue forever, so close the connection.
                        break
                    continue
                # Dispatch without awaiting the result: the next pipelined
                # request is read (and can join the same micro-batch) while
                # this one is evaluated.
                task = asyncio.ensure_future(
                    self._dispatch(method, path, headers, body)
                )
                self._inflight.add(task)
                task.add_done_callback(self._inflight.discard)
                inflight[0] += 1  # released by the writer after the write
                self._enqueue(queue, task)
                if close_requested:
                    break
        except (ConnectionError, OSError):
            pass
        except asyncio.CancelledError:
            # Service shutdown with the connection still open: close it
            # quietly (ending cancelled would make asyncio's stream
            # machinery log the cancellation as an error).  Close the
            # transport *now* — a writer blocked in drain() on a peer
            # that stopped reading can only be unblocked by the close
            # (its pending write fails), and close() already waited out
            # its drain timeout before cancelling us.
            writer.close()
        finally:
            self._connections.discard(asyncio.current_task())
            queue.put_nowait(None)
            try:
                with contextlib.suppress(asyncio.CancelledError):
                    await writer_task
            finally:
                # Items enqueued after the writer died early can never be
                # written; account for them so shutdown does not stall.
                while not queue.empty():
                    if queue.get_nowait() is not None:
                        self._pending_responses -= 1
                writer.close()
                with contextlib.suppress(ConnectionError, OSError, asyncio.CancelledError):
                    await writer.wait_closed()

    @staticmethod
    def _parse_head(head: bytes):
        try:
            lines = head.decode("latin-1").split("\r\n")
            method, path, _version = lines[0].split(" ", 2)
        except ValueError:
            return None, None, None, "Malformed request line."
        headers = {}
        for line in lines[1:]:
            if not line:
                continue
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        return method.upper(), path, headers, None

    async def _write_responses(
        self, queue: asyncio.Queue, writer: asyncio.StreamWriter, inflight
    ) -> None:
        try:
            while True:
                item = await queue.get()
                if item is None:
                    return
                try:
                    payload = await item if asyncio.isfuture(item) else item
                    writer.write(payload)
                    await writer.drain()
                except (ConnectionError, OSError):
                    return
                finally:
                    self._pending_responses -= 1
                    if asyncio.isfuture(item):
                        inflight[0] -= 1
        finally:
            # On early exit (peer vanished) account for the responses
            # still queued, so a shutdown drain does not wait for writes
            # that can never happen.
            while not queue.empty():
                item = queue.get_nowait()
                if item is not None:
                    self._pending_responses -= 1
                    if asyncio.isfuture(item):
                        inflight[0] -= 1

    # -- Request dispatch -----------------------------------------------------

    async def _dispatch(
        self, method: str, path: str, headers: Dict[str, str], body: bytes
    ) -> bytes:
        try:
            tenant = headers.get("x-tenant", wire.DEFAULT_TENANT)
            try:
                tenant = wire.parse_session_name(tenant, field="x-tenant")
            except wire.WireError as error:
                return _json_response(400, {"error": str(error)})
            if path == "/v1/query":
                if method != "POST":
                    return _json_response(405, {"error": "POST required."})
                return await self._handle_query(body, tenant)
            if path == "/v1/sessions":
                if method == "GET":
                    return self._handle_session_list(tenant)
                if method != "POST":
                    return _json_response(405, {"error": "GET or POST required."})
                return await self._handle_session_create(tenant, body)
            if path.startswith("/v1/sessions/"):
                return await self._dispatch_session(
                    method, path[len("/v1/sessions/"):], tenant, body
                )
            if path == "/v1/models":
                return _json_response(200, self.registry.describe())
            if path == "/v1/models/register":
                if method != "POST":
                    return _json_response(405, {"error": "POST required."})
                return await self._handle_register(body)
            if path == "/v1/models/unregister":
                if method != "POST":
                    return _json_response(405, {"error": "POST required."})
                return await self._handle_unregister(body)
            if path == "/v1/stats":
                return _json_response(200, await self._stats())
            if path == "/metrics":
                return _response(
                    200,
                    (await self._metrics_exposition()).encode("utf-8"),
                    content_type="text/plain; version=0.0.4; charset=utf-8",
                )
            if path.startswith("/v1/trace/"):
                trace_id = path[len("/v1/trace/"):]
                entry = self.recorder.get(trace_id)
                if entry is None:
                    return _json_response(
                        404,
                        {"error": "No trace %r (unsampled, evicted, or "
                                  "unknown)." % (trace_id,)},
                    )
                return _json_response(200, entry)
            if path == "/v1/clear_cache":
                if method != "POST":
                    return _json_response(405, {"error": "POST required."})
                await self.backend.clear_caches()
                if self._pool is not None:
                    # Sharded mode: the registry's live copies are not on
                    # the query path, but their compiled-blob handles must
                    # be refreshed too (clear_cache re-maps the blob), so
                    # no stale mmap survives anywhere in the parent.
                    await asyncio.get_running_loop().run_in_executor(
                        None, self.registry.clear_caches
                    )
                return _json_response(200, {"ok": True})
            if path == "/healthz":
                return _json_response(200, {"ok": True})
            return _json_response(404, {"error": "Unknown path %s" % (path,)})
        except Exception as error:  # never kill a connection on a handler bug
            return _json_response(400, {"error": "%s: %s" % (type(error).__name__, error)})

    async def _handle_query(
        self, body: bytes, tenant: str = wire.DEFAULT_TENANT
    ) -> bytes:
        lines = [line for line in body.split(b"\n") if line.strip()]
        if not lines:
            return _json_response(400, {"error": "Empty query body."})
        results = await asyncio.gather(
            *[self._handle_query_line(line, tenant) for line in lines]
        )
        return _response(200, b"".join(line + b"\n" for line in results))

    async def _handle_query_line(
        self, line: bytes, tenant: str = wire.DEFAULT_TENANT
    ) -> bytes:
        # Every request gets a trace id (echoed on its response line for
        # correlation); only requests that opt in ("trace": true) or win
        # the sampling draw pay for an actual span tree behind it.
        trace_id = obs.new_trace_id()
        try:
            request = wire.parse_request_line(line)
        except wire.WireError as error:
            request_id = None
            try:
                decoded = json.loads(line)
                if isinstance(decoded, dict):
                    request_id = decoded.get("id")
            except ValueError:
                pass
            return wire.encode_error_line(request_id, str(error), trace_id=trace_id)
        try:
            self.registry.get(request.model)
        except RegistryError as error:
            return wire.encode_error_line(
                request.id, str(error), kind="RegistryError", trace_id=trace_id
            )
        if request.tenant == wire.DEFAULT_TENANT:
            # The x-tenant header is the connection's default tenant; an
            # explicit per-line 'tenant' field still wins.
            request.tenant = tenant
        try:
            result = await self._submit_traced(request, trace_id)
        except OverloadedError as error:
            return wire.encode_overloaded_line(
                request.id, error.retry_after_ms, trace_id=trace_id
            )
        return wire.encode_response(request.id, result, trace_id=trace_id)

    async def _submit_traced(self, request: wire.Request, trace_id: str):
        """Submit one request with the service's sampling/recording policy.

        Shared by the NDJSON query path and the session endpoints: mints
        the live tracer when sampled, records the flight-recorder entry
        either way, and re-raises :class:`OverloadedError` for the caller
        to encode in its own response shape.
        """
        trace = None
        if request.trace or (
            self.trace_sample and random.random() < self.trace_sample
        ):
            trace = Trace(
                trace_id=trace_id,
                name="request",
                tags={"model": request.model, "kind": request.kind},
            )
        # The wire flag becomes the live tracer (or None): the scheduler
        # attaches queue spans and batch fragments through this field.
        request.trace = trace
        loop = asyncio.get_running_loop()
        start = loop.time()
        try:
            result = await self.scheduler.submit(request)
        except OverloadedError as error:
            if trace is not None:
                trace.event("overloaded", retry_after_ms=error.retry_after_ms)
            self.recorder.observe(
                trace, trace_id, (loop.time() - start) * 1e3,
                model=request.model, kind=request.kind,
            )
            raise
        self.recorder.observe(
            trace, trace_id, (loop.time() - start) * 1e3,
            model=request.model, kind=request.kind,
        )
        return result

    # -- Streaming posterior sessions -----------------------------------------

    #: Session read verb -> wire query kind.  ``query`` answers event
    #: probabilities under the current posterior; ``predict`` draws
    #: posterior samples.
    SESSION_KINDS = {
        "query": "prob",
        "logprob": "logprob",
        "predict": "sample",
        "logpdf": "logpdf",
    }

    @staticmethod
    def _session_error(error: SessionError) -> bytes:
        return _json_response(
            error.status,
            {"error": str(error), "error_kind": type(error).__name__},
        )

    def _session_lock(self, tenant: str, name: str) -> asyncio.Lock:
        """The lock serializing chain extensions of one session."""
        key = (tenant, name)
        lock = self._session_locks.get(key)
        if lock is None:
            if len(self._session_locks) > 2 * self.sessions.max_sessions:
                # Evicted/expired sessions leave locks behind; prune the
                # ones no live session (and no in-flight observe) can
                # contend on.
                live = {(s.tenant, s.name) for s in self.sessions.list()}
                for stale in [
                    k for k, v in self._session_locks.items()
                    if k not in live and not v.locked()
                ]:
                    del self._session_locks[stale]
            lock = self._session_locks[key] = asyncio.Lock()
        return lock

    async def _dispatch_session(
        self, method: str, rest: str, tenant: str, body: bytes
    ) -> bytes:
        name, _, verb = rest.partition("/")
        try:
            name = wire.parse_session_name(name)
        except wire.WireError as error:
            return _json_response(400, {"error": str(error)})
        if verb == "":
            if method == "DELETE":
                return self._handle_session_delete(tenant, name)
            if method == "GET":
                return self._handle_session_describe(tenant, name)
            return _json_response(405, {"error": "GET or DELETE required."})
        if method != "POST":
            return _json_response(405, {"error": "POST required."})
        if verb == "delete":
            return self._handle_session_delete(tenant, name)
        if verb == "observe":
            return await self._handle_session_observe(tenant, name, body)
        kind = self.SESSION_KINDS.get(verb)
        if kind is None:
            return _json_response(
                404, {"error": "Unknown session verb %r." % (verb,)}
            )
        return await self._handle_session_query(tenant, name, kind, body)

    async def _handle_session_create(self, tenant: str, body: bytes) -> bytes:
        try:
            data = json.loads(body)
        except ValueError as error:
            return _json_response(400, {"error": "Bad JSON body: %s" % (error,)})
        if not isinstance(data, dict):
            return _json_response(400, {"error": "Create needs a JSON object body."})
        try:
            name = wire.parse_session_name(data.get("session"))
            if "tenant" in data:
                tenant = wire.parse_session_name(data["tenant"], field="tenant")
        except wire.WireError as error:
            return _json_response(400, {"error": str(error)})
        model = data.get("model")
        if not isinstance(model, str) or not model:
            return _json_response(400, {"error": "Create needs a non-empty 'model'."})
        try:
            self.registry.get(model)
        except RegistryError as error:
            return _json_response(404, {"error": str(error)})
        try:
            session = self.sessions.create(tenant, name, model)
        except SessionError as error:
            response = {"error": str(error), "error_kind": type(error).__name__}
            if error.status == 429:
                # Quota sheds advise back-off like queue sheds do.
                response["retry_after_ms"] = self.scheduler.retry_after_ms()
            return _json_response(error.status, response)
        return _json_response(200, dict(wire.session_response(session), ok=True))

    async def _handle_session_observe(
        self, tenant: str, name: str, body: bytes
    ) -> bytes:
        """Extend the session's chain by one exact conditioning step.

        Commit-on-success: the candidate chain (current chain plus the
        new evidence) is submitted as one ``observe`` request; only a
        backend ack moves the session forward, so a zero-probability or
        unparseable observation leaves the chain exactly as it was.
        """
        try:
            data = json.loads(body)
        except ValueError as error:
            return _json_response(400, {"error": "Bad JSON body: %s" % (error,)})
        event = data.get("event") if isinstance(data, dict) else None
        if not isinstance(event, str) or not event:
            return _json_response(
                400, {"error": "Observe needs a textual 'event' field."}
            )
        trace_id = obs.new_trace_id()
        async with self._session_lock(tenant, name):
            try:
                session = self.sessions.get(tenant, name)
                chain = session.candidate_chain(event)
            except SessionError as error:
                return self._session_error(error)
            request = wire.Request(
                None, session.model, "observe", {"event": event},
                condition=wire.normalize_condition(chain),
                no_batch=bool(data.get("no_batch")),
                trace=bool(data.get("trace")),
                tenant=tenant, affinity=session.affinity,
            )
            try:
                result = await self._submit_traced(request, trace_id)
            except OverloadedError as error:
                shed = wire.overloaded_response(None, error.retry_after_ms)
                shed["trace"] = trace_id
                return _json_response(429, shed)
            if result[0] != "ok":
                return _json_response(
                    400,
                    dict(
                        wire.session_response(session), ok=False,
                        error_kind=result[1], error=result[2], trace=trace_id,
                    ),
                )
            self.sessions.commit_observe(session, chain)
        return _json_response(
            200, dict(wire.session_response(session), ok=True, trace=trace_id)
        )

    async def _handle_session_query(
        self, tenant: str, name: str, kind: str, body: bytes
    ) -> bytes:
        """Read the session's current posterior (chain ships as condition)."""
        try:
            data = json.loads(body) if body.strip() else {}
        except ValueError as error:
            return _json_response(400, {"error": "Bad JSON body: %s" % (error,)})
        if not isinstance(data, dict):
            return _json_response(
                400, {"error": "Session query body must be a JSON object."}
            )
        try:
            session = self.sessions.get(tenant, name)
        except SessionError as error:
            return self._session_error(error)
        shaped = dict(data, model=session.model, kind=kind)
        shaped.pop("condition", None)  # the session's chain IS the condition
        try:
            request = wire.parse_request(shaped)
        except wire.WireError as error:
            return _json_response(400, {"error": str(error)})
        request.condition = wire.normalize_condition(session.chain)
        request.tenant = tenant
        request.affinity = session.affinity
        trace_id = obs.new_trace_id()
        try:
            result = await self._submit_traced(request, trace_id)
        except OverloadedError as error:
            shed = wire.overloaded_response(data.get("id"), error.retry_after_ms)
            shed["trace"] = trace_id
            return _json_response(429, shed)
        self.sessions.count_query(session)
        if result[0] == "ok":
            status, response = 200, {
                "id": data.get("id"), "ok": True,
                "value": wire.encode_value(result[1]),
            }
        else:
            status, response = 400, {
                "id": data.get("id"), "ok": False,
                "error_kind": result[1], "error": result[2],
            }
        response.update(
            trace=trace_id, tenant=tenant, session=name,
            observes=len(session.chain),
        )
        return _json_response(status, response)

    def _handle_session_list(self, tenant: str) -> bytes:
        return _json_response(
            200,
            {
                "tenant": tenant,
                "sessions": [
                    wire.session_response(session)
                    for session in self.sessions.list(tenant)
                ],
            },
        )

    def _handle_session_describe(self, tenant: str, name: str) -> bytes:
        try:
            session = self.sessions.get(tenant, name)
        except SessionError as error:
            return self._session_error(error)
        return _json_response(200, wire.session_response(session))

    def _handle_session_delete(self, tenant: str, name: str) -> bytes:
        try:
            session = self.sessions.delete(tenant, name)
        except SessionError as error:
            return self._session_error(error)
        self._session_locks.pop((tenant, name), None)
        return _json_response(
            200, dict(wire.session_response(session), ok=True, deleted=True)
        )

    # -- Dynamic model lifecycle ----------------------------------------------

    async def _handle_register(self, body: bytes) -> bytes:
        """Register a model on the running service (catalog name or payload).

        Body: ``{"name": ..., "catalog": "hmm20"}``, ``{"name": ...,
        "payload": "<SpplModel.to_json()>"}`` or ``{"name": ...,
        "path": "<model>.spz"}`` (a compiled blob; the embedded payload
        is hash-verified and the graph digest-checked on load), plus an
        optional ``cache_size``.  The model is built off the event loop,
        shipped to every worker shard, and published to the registry only
        after all shards acked the round-trip digest — a failed handshake
        leaves the service exactly as it was.
        """
        try:
            data = json.loads(body)
        except ValueError as error:
            return _json_response(400, {"error": "Bad JSON body: %s" % (error,)})
        if not isinstance(data, dict) or not isinstance(data.get("name"), str) or not data["name"]:
            return _json_response(400, {"error": "Register needs a non-empty 'name'."})
        name = data["name"]
        catalog = data.get("catalog")
        payload = data.get("payload")
        blob = data.get("path")
        cache_size = data.get("cache_size")
        if cache_size is not None and (not isinstance(cache_size, int) or cache_size < 1):
            return _json_response(400, {"error": "'cache_size' must be a positive integer."})
        if sum(source is not None for source in (catalog, payload, blob)) != 1:
            return _json_response(
                400,
                {"error": "Register needs exactly one of 'catalog', "
                          "'payload' or 'path'."},
            )
        async with self._lifecycle_lock:
            if name in self.registry:
                return _json_response(
                    409, {"error": "Model %r is already registered." % (name,)}
                )
            loop = asyncio.get_running_loop()
            try:
                if catalog is not None:
                    if not isinstance(catalog, str):
                        return _json_response(400, {"error": "'catalog' must be a string."})
                    model = await loop.run_in_executor(
                        None, self.registry.build_catalog, catalog
                    )
                elif blob is not None:
                    if not isinstance(blob, str):
                        return _json_response(400, {"error": "'path' must be a string."})
                    from ..engine import SpplModel

                    model = await loop.run_in_executor(None, SpplModel.from_spz, blob)
                else:
                    if not isinstance(payload, str):
                        return _json_response(400, {"error": "'payload' must be a string."})
                    from ..engine import SpplModel

                    model = await loop.run_in_executor(None, SpplModel.from_json, payload)
            except (RegistryError, ValueError, KeyError, TypeError, OSError) as error:
                return _json_response(
                    400, {"error": "Cannot build model: %s" % (error,)}
                )
            # prepare() serializes the graph and digests it — off-loop,
            # like the build above, so a large model cannot stall
            # in-flight queries while the lifecycle lock is held.
            registered = await loop.run_in_executor(
                None,
                lambda: self.registry.prepare(name, model, cache_size=cache_size),
            )
            try:
                await self.backend.register_model(name, registered)
            except (WorkerError, OSError, EOFError) as error:
                # WorkerError covers refusals; OSError/EOFError cover a
                # worker dying mid-handshake — both are server-side 5xx,
                # not client errors.
                return _json_response(
                    500, {"error": "Worker handshake failed: %s: %s"
                          % (type(error).__name__, error)}
                )
            self.registry.publish(registered)
            if self.journal is not None:
                try:
                    # Off-loop: the append fsyncs (and large payloads
                    # serialize to disk); the lifecycle lock already
                    # serializes journal writers.
                    await loop.run_in_executor(
                        None, self.journal.record_register, registered
                    )
                except OSError as error:
                    # The model IS live, but the durability promise is
                    # broken: report loudly rather than pretend.
                    return _json_response(
                        500,
                        {"error": "Model %r registered but journal append "
                                  "failed: %s" % (name, error),
                         "model": name, "registered": True, "journaled": False},
                    )
        return _json_response(
            200,
            {
                "ok": True,
                "model": name,
                "digest": registered.digest,
                "shards_acked": self.backend.n_shards,
                "journaled": self.journal is not None,
            },
        )

    async def _handle_unregister(self, body: bytes, drain_timeout: float = 10.0) -> bytes:
        """Unregister a model: reject new queries, drain in-flight, tear down.

        The registry entry is removed first (new requests fail with
        ``RegistryError`` immediately); worker copies and caches are only
        dropped once every in-flight query against the model has
        completed, so unregistration never turns accepted requests into
        errors.
        """
        try:
            data = json.loads(body)
        except ValueError as error:
            return _json_response(400, {"error": "Bad JSON body: %s" % (error,)})
        if not isinstance(data, dict) or not isinstance(data.get("name"), str):
            return _json_response(400, {"error": "Unregister needs a 'name'."})
        name = data["name"]
        async with self._lifecycle_lock:
            try:
                self.registry.unregister(name)
            except RegistryError as error:
                return _json_response(404, {"error": str(error)})
            loop = asyncio.get_running_loop()
            if self.journal is not None:
                # The registry removal is the durable-intent point:
                # journal the tombstone *before* worker teardown, so a
                # model the live service stopped serving cannot
                # resurrect on restart just because a shard later
                # failed to tear down.
                try:
                    await loop.run_in_executor(
                        None, self.journal.record_unregister, name
                    )
                except OSError as error:
                    return _json_response(
                        500,
                        {"error": "Model %r unregistered but journal append "
                                  "failed: %s" % (name, error),
                         "model": name, "journaled": False},
                    )
            deadline = loop.time() + drain_timeout
            while self.scheduler.inflight(name) and loop.time() < deadline:
                await asyncio.sleep(0.005)
            drained = self.scheduler.inflight(name) == 0
            try:
                await self.backend.unregister_model(name)
            except (WorkerError, OSError, EOFError) as error:
                # A shard died during teardown.  The registry entry stays
                # removed — the name already rejects queries, and
                # re-publishing would resurrect a model other shards have
                # dropped; the dead shard's copy is unreachable by name.
                return _json_response(
                    500, {"error": "Worker teardown failed: %s: %s"
                          % (type(error).__name__, error), "model": name}
                )
        return _json_response(200, {"ok": True, "model": name, "drained": drained})

    async def _stats(self) -> Dict:
        """One consistent stats snapshot.

        Every loop-owned counter (scheduler, HTTP, supervision, journal,
        recorder) is collected in a single synchronous pass — no ``await``
        between reads — so invariants that hold on the loop (e.g.
        ``respawns >= requeued_batches``) also hold in every snapshot.
        Only the worker shards' own statistics require pipe round trips;
        they are awaited *after* the snapshot and merged in.
        """
        stats = {
            "scheduler": self.scheduler.stats(),
            "http": {
                "connection_sheds": self.connection_sheds,
                "max_inflight_per_connection": self.max_inflight_per_connection,
            },
            "backend": self.backend.stats_sync(),
            "sessions": self.sessions.stats(),
            "trace": self.recorder.stats(),
            "models": self.registry.names(),
        }
        if self.journal is not None:
            stats["journal"] = self.journal.stats()
        if self._pool is not None:
            stats["backend"]["shards"] = await self._pool.shard_stats()
        return stats

    async def _metrics_exposition(self) -> str:
        """Render ``GET /metrics`` (Prometheus text format 0.0.4).

        Registry-owned instruments render directly; per-model cache
        counters, per-pass planner outcomes, and journal statistics live
        in their owners (or in worker shards, reached over the pipe) and
        are gathered here as labeled scrape-time samples.
        """
        counters: List[obs.metrics.Sample] = []
        gauges: List[obs.metrics.Sample] = []
        backend = await self.backend.stats()
        per_model = backend.get("models")
        if per_model is not None:
            for name, model_stats in per_model.items():
                self._model_samples({"model": name}, model_stats, counters, gauges)
        for shard, shard_stats in enumerate(backend.get("shards", [])):
            for name, model_stats in shard_stats.items():
                self._model_samples(
                    {"model": name, "shard": str(shard)},
                    model_stats, counters, gauges,
                )
        if self.journal is not None:
            journal_counters, journal_gauges = self.journal.metrics_samples()
            counters.extend(journal_counters)
            gauges.extend(journal_gauges)
        # Per-tenant fairness series: who is shedding (counter) and who
        # holds the open sessions (gauge) — the noisy-neighbor dashboards.
        for tenant, count in sorted(self.scheduler.tenant_sheds.items()):
            counters.append(
                ("repro.scheduler.sheds_by_tenant", {"tenant": tenant}, count)
            )
        for tenant, count in sorted(
            self.sessions.stats()["by_tenant"].items()
        ):
            gauges.append(
                ("repro.sessions.open_by_tenant", {"tenant": tenant}, count)
            )
        return self.metrics.render(extra_counters=counters, extra_gauges=gauges)

    @staticmethod
    def _model_samples(labels: Dict[str, str], model_stats: Dict,
                       counters: List, gauges: List) -> None:
        """Labeled samples for one model's cache / planner statistics."""
        results = model_stats.get("results", {})
        for key in ("hits", "misses"):
            if key in results:
                counters.append(
                    ("repro.result_cache." + key, labels, results[key])
                )
        for key in ("hits", "misses", "evictions"):
            if key in model_stats:
                counters.append(
                    ("repro.query_cache." + key, labels, model_stats[key])
                )
        for name, bucket in model_stats.get("plan", {}).get("passes", {}).items():
            for outcome, count in bucket.items():
                counters.append((
                    "repro.plan." + outcome,
                    dict(labels, **{"pass": name}),
                    count,
                ))
