"""Sum-product expressions and exact inference algorithms."""

from .analysis import cdf_table
from .analysis import entropy
from .analysis import expectation
from .analysis import marginal_support
from .analysis import mutual_information
from .analysis import probability_table
from .analysis import variance
from .base import DensityPair
from .base import Memo
from .base import SPE
from .base import clause_key
from .builders import factor_sum_of_products
from .dedup import deduplicate
from .leaf import Leaf
from .product_node import ProductSPE
from .product_node import spe_product
from .serialize import spe_from_dict
from .serialize import spe_from_json
from .serialize import spe_to_dict
from .serialize import spe_to_json
from .sum_node import SumSPE
from .sum_node import spe_sum
from .visualize import to_dot

__all__ = [
    "DensityPair",
    "Leaf",
    "Memo",
    "ProductSPE",
    "SPE",
    "SumSPE",
    "cdf_table",
    "clause_key",
    "deduplicate",
    "entropy",
    "expectation",
    "factor_sum_of_products",
    "marginal_support",
    "mutual_information",
    "probability_table",
    "spe_from_dict",
    "spe_from_json",
    "spe_product",
    "spe_sum",
    "spe_to_dict",
    "spe_to_json",
    "to_dot",
    "variance",
]
