"""Model registry: named models with per-model cache budgets.

The registry is the service's source of truth for which models exist and
how much query-cache memory each may use.  Models come from two places:

* the **workloads catalog** -- every paper benchmark by name
  (``hmm20`` for a 20-step hierarchical HMM, ``indian_gpa``, and the
  Table 1 networks ``hiring``/``alarm``/``grass``/``noisy_or``/
  ``clinical_trial``/``heart_disease``), or
* a **serialized SPE file** written with
  :meth:`repro.engine.SpplModel.save` (structural-key JSON).

Each registered model keeps, besides the live :class:`SpplModel`:

* ``payload`` -- its canonical serialized form (the exact bytes worker
  processes deserialize, so every shard holds a bit-identical graph), and
* ``digest`` -- the :func:`repro.spe.spe_digest` of that form, which
  workers recompute after deserializing to prove round-trip fidelity.
"""

from __future__ import annotations

import re
from typing import Callable
from typing import Dict
from typing import List
from typing import Optional

from ..engine import SpplModel
from ..spe import DEFAULT_CACHE_ENTRIES
from ..spe import spe_digest
from ..spe import spe_from_json


class RegistryError(KeyError):
    """Unknown model name or malformed catalog specification."""

    def __str__(self) -> str:
        # KeyError renders its message repr-quoted; these are user-facing.
        return self.args[0] if self.args else ""


class RegisteredModel:
    """A served model plus the serialized payload its worker shards load."""

    __slots__ = ("name", "model", "payload", "digest", "cache_size")

    def __init__(self, name: str, model: SpplModel, cache_size: Optional[int]):
        self.name = name
        self.model = model
        self.cache_size = cache_size
        self.payload = model.to_json()
        self.digest = spe_digest(model.spe)

    def describe(self) -> Dict:
        """Static description for the ``/v1/models`` endpoint."""
        return {
            "variables": self.model.variables,
            "nodes": self.model.size(),
            "digest": self.digest,
            "cache_max_entries": self.cache_size,
        }


def _catalog_builders() -> Dict[str, Callable[[], SpplModel]]:
    from ..compiler import compile_command
    from ..workloads import indian_gpa
    from ..workloads import table1_models

    def from_command(builder):
        return lambda: SpplModel(compile_command(builder()))

    return {
        "indian_gpa": indian_gpa.model,
        "hiring": from_command(table1_models.hiring),
        "alarm": from_command(table1_models.alarm),
        "grass": from_command(table1_models.grass),
        "noisy_or": from_command(table1_models.noisy_or),
        "clinical_trial": from_command(table1_models.clinical_trial_table1),
        "heart_disease": from_command(table1_models.heart_disease),
    }


#: ``hmm<N>`` catalog names, e.g. ``hmm20`` = 20-step hierarchical HMM.
_HMM_PATTERN = re.compile(r"^hmm(\d{1,3})$")


class ModelRegistry:
    """Named models, each with its own query-cache budget.

    ``default_cache_size`` bounds the :class:`~repro.spe.QueryCache` of
    models registered without an explicit budget (default: the library's
    :data:`~repro.spe.DEFAULT_CACHE_ENTRIES`).  Budgets are per model;
    the service's total cache memory is the sum over registered models
    (and, with a worker pool, each shard holds its own caches with the
    same per-model budgets).
    """

    def __init__(self, default_cache_size: Optional[int] = None):
        self.default_cache_size = (
            DEFAULT_CACHE_ENTRIES if default_cache_size is None else default_cache_size
        )
        self._models: Dict[str, RegisteredModel] = {}

    # -- Registration ---------------------------------------------------------

    def register(
        self, name: str, model: SpplModel, cache_size: Optional[int] = None
    ) -> RegisteredModel:
        """Register a live model under ``name`` with a cache budget.

        The model is re-wrapped so its cache bound matches the budget
        (an already-adopted cache is never resized behind its owner's
        back)."""
        return self.publish(self.prepare(name, model, cache_size=cache_size))

    def prepare(
        self, name: str, model: SpplModel, cache_size: Optional[int] = None
    ) -> RegisteredModel:
        """Build a :class:`RegisteredModel` without publishing it.

        The two-step ``prepare`` / :meth:`publish` split lets a running
        service ship the prepared payload to every worker shard and
        collect digest acks *before* the name becomes queryable, so a
        failed registration is never observable through ``/v1/query``.
        """
        if not isinstance(name, str) or not name:
            raise RegistryError("Model name must be a non-empty string.")
        if name in self._models:
            raise RegistryError("Model %r is already registered." % (name,))
        if not isinstance(model, SpplModel):
            raise TypeError("register() needs an SpplModel, got %r." % (model,))
        budget = self.default_cache_size if cache_size is None else cache_size
        model = SpplModel(model.spe, cache_size=budget)
        return RegisteredModel(name, model, budget)

    def publish(self, registered: RegisteredModel) -> RegisteredModel:
        """Make a prepared model visible to lookups."""
        if registered.name in self._models:
            raise RegistryError(
                "Model %r is already registered." % (registered.name,)
            )
        self._models[registered.name] = registered
        return registered

    def unregister(self, name: str) -> RegisteredModel:
        """Remove a model from the registry (new lookups fail immediately).

        Returns the removed entry so the caller can finish in-flight work
        against the live model before tearing down worker copies.
        """
        try:
            return self._models.pop(name)
        except KeyError:
            raise RegistryError(
                "Unknown model %r (registered: %s)."
                % (name, ", ".join(sorted(self._models)) or "<none>")
            ) from None

    def register_catalog(
        self, spec: str, cache_size: Optional[int] = None
    ) -> RegisteredModel:
        """Register a workloads-catalog model by name (e.g. ``hmm20``)."""
        return self.register(spec, self._build_catalog(spec), cache_size=cache_size)

    def register_file(
        self, path, name: Optional[str] = None, cache_size: Optional[int] = None
    ) -> RegisteredModel:
        """Register a model from a serialized SPE file (``SpplModel.save``)."""
        with open(path, "r", encoding="utf-8") as handle:
            spe = spe_from_json(handle.read())
        if name is None:
            name = re.sub(r"\.(json|spe)$", "", str(path).rsplit("/", 1)[-1])
        return self.register(name, SpplModel(spe), cache_size=cache_size)

    def build_catalog(self, spec: str) -> SpplModel:
        """Build (without registering) a workloads-catalog model by name.

        Used by the live-registration endpoint, which must prepare the
        model and collect worker acks before publishing the name.
        """
        return self._build_catalog(spec)

    def _build_catalog(self, spec: str) -> SpplModel:
        match = _HMM_PATTERN.match(spec)
        if match:
            from ..workloads import hmm

            return hmm.model(int(match.group(1)))
        builders = _catalog_builders()
        if spec not in builders:
            raise RegistryError(
                "Unknown catalog model %r (expected hmm<N>, %s)."
                % (spec, ", ".join(sorted(builders)))
            )
        return builders[spec]()

    # -- Lookup ---------------------------------------------------------------

    def get(self, name: str) -> RegisteredModel:
        try:
            return self._models[name]
        except KeyError:
            raise RegistryError(
                "Unknown model %r (registered: %s)."
                % (name, ", ".join(sorted(self._models)) or "<none>")
            ) from None

    def names(self) -> List[str]:
        return sorted(self._models)

    def __contains__(self, name: str) -> bool:
        return name in self._models

    def __len__(self) -> int:
        return len(self._models)

    def describe(self) -> Dict[str, Dict]:
        """Static description of every model (``/v1/models``)."""
        return {name: reg.describe() for name, reg in sorted(self._models.items())}

    def clear_caches(self) -> None:
        """Drop every registered model's cached traversal results.

        Uses ``everything=True``: each registered model owns its cache
        exclusively, and scoped clearing would keep entries keyed on
        posterior-subgraph uids (not reachable from the prior) alive.
        The parsed-event LRU is dropped too — a clear must force full
        recomputation, including re-parsing query strings.
        """
        for registered in self._models.values():
            registered.model.clear_cache(everything=True)
            registered.model.clear_event_cache()
