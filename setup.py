"""Setuptools shim.

The canonical build configuration lives in ``pyproject.toml``.  This file
exists so that the package can be installed in editable mode on machines
without the ``wheel`` package (``python setup.py develop`` or
``pip install -e . --no-build-isolation``).
"""

from setuptools import find_packages
from setuptools import setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of SPPL: Probabilistic Programming with Fast Exact "
        "Symbolic Inference (PLDI 2021)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
    install_requires=["numpy", "scipy"],
)
