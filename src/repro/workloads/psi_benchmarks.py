"""The PSI comparison benchmarks of Tables 3 and 4.

Each benchmark bundles an SPPL program, a set of observation datasets, and a
fixed posterior query.  The multi-stage SPPL workflow translates the program
once, conditions it once per dataset, and queries each posterior; the
single-stage baseline (:class:`repro.baselines.PathEnumerationSolver`)
re-solves the whole program per dataset, as PSI does (Fig. 7).

Datasets are synthesized by forward-simulating the generative program with a
fixed seed (the original PSI benchmark datasets are not distributed with the
paper); the dataset *sizes* and distribution signatures match Table 4.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from dataclasses import field
from typing import Callable
from typing import Dict
from typing import List
from typing import Optional
from typing import Tuple
from typing import Union

import numpy as np

from ..baselines import PathEnumerationSolver
from ..baselines import PathExplosionError
from ..compiler import Command
from ..compiler import Condition
from ..compiler import For
from ..compiler import IfElse
from ..compiler import Sample
from ..compiler import Sequence
from ..compiler import Switch
from ..distributions import bernoulli
from ..distributions import beta
from ..distributions import binomial
from ..distributions import choice
from ..distributions import gamma
from ..distributions import normal
from ..distributions import poisson
from ..engine import SpplModel
from ..events import Event
from ..transforms import Id
from ..transforms import exp as exp_t
from ..transforms import log as log_t
from . import hmm
from .table1_models import clinical_trial

#: A dataset is either equality observations (constrain) or an event (condition).
Dataset = Union[Dict[str, float], Event]


@dataclass
class PsiBenchmark:
    """One row of Table 4."""

    name: str
    signature: str
    build: Callable[[], Command]
    datasets: List[Dataset]
    query: Event
    notes: str = ""

    @property
    def n_datasets(self) -> int:
        return len(self.datasets)


@dataclass
class StageTimings:
    """Per-stage wall-clock timings of a multi-stage SPPL run (Table 4 columns)."""

    translate: float
    condition: List[float] = field(default_factory=list)
    query: List[float] = field(default_factory=list)
    answers: List[float] = field(default_factory=list)

    @property
    def total(self) -> float:
        return self.translate + sum(self.condition) + sum(self.query)


def apply_dataset(model: SpplModel, dataset: Dataset) -> SpplModel:
    """Condition a model on a dataset (equality observations or an event)."""
    if isinstance(dataset, dict):
        return model.constrain(dataset)
    return model.condition(dataset)


def run_sppl(benchmark: PsiBenchmark) -> StageTimings:
    """Run a benchmark with the multi-stage SPPL workflow, timing each stage."""
    start = time.perf_counter()
    model = SpplModel.from_command(benchmark.build())
    timings = StageTimings(translate=time.perf_counter() - start)
    for dataset in benchmark.datasets:
        start = time.perf_counter()
        posterior = apply_dataset(model, dataset)
        timings.condition.append(time.perf_counter() - start)
        start = time.perf_counter()
        answer = posterior.prob(benchmark.query)
        timings.query.append(time.perf_counter() - start)
        timings.answers.append(answer)
    return timings


@dataclass
class BaselineOutcome:
    """Outcome of the single-stage path-enumeration baseline on one benchmark."""

    per_dataset_seconds: List[float]
    answers: List[Optional[float]]
    failed: bool
    failure_reason: str = ""

    @property
    def total(self) -> float:
        return sum(self.per_dataset_seconds)


def run_baseline(benchmark: PsiBenchmark, max_paths: int = 50000) -> BaselineOutcome:
    """Run a benchmark with the single-stage exact baseline (PSI substitute)."""
    per_dataset: List[float] = []
    answers: List[Optional[float]] = []
    for dataset in benchmark.datasets:
        solver = PathEnumerationSolver(benchmark.build(), max_paths=max_paths)
        observations = dataset if isinstance(dataset, dict) else None
        condition = dataset if isinstance(dataset, Event) else None
        start = time.perf_counter()
        try:
            answer = solver.query_probability(
                benchmark.query, observations=observations, condition=condition
            )
            answers.append(answer)
        except PathExplosionError as error:
            return BaselineOutcome(
                per_dataset_seconds=per_dataset,
                answers=answers,
                failed=True,
                failure_reason=str(error),
            )
        per_dataset.append(time.perf_counter() - start)
    return BaselineOutcome(per_dataset_seconds=per_dataset, answers=answers, failed=False)


# ---------------------------------------------------------------------------
# Digit recognition: categorical class with 784 Bernoulli pixels.
# ---------------------------------------------------------------------------

_N_PIXELS = 784
_N_CLASSES = 10


def _digit_theta(digit: int, pixel: int) -> float:
    """Synthetic per-class pixel activation probabilities (deterministic)."""
    row, col = divmod(pixel, 28)
    lit = (row * (digit + 3) + col * (digit + 7)) % 13 < 4
    return 0.85 if lit else 0.08


def digit_recognition_program(n_pixels: int = _N_PIXELS) -> Command:
    """Naive-Bayes digit model: class ~ categorical(10), pixels ~ Bernoulli."""
    digits = ["digit_%d" % (d,) for d in range(_N_CLASSES)]

    def pixels_for(digit_name: str) -> Command:
        digit = int(digit_name.split("_")[1])
        return Sequence(
            [
                Sample("pixel[%d]" % (j,), bernoulli(_digit_theta(digit, j)))
                for j in range(n_pixels)
            ]
        )

    return Sequence(
        [
            Sample("digit", choice({name: 1.0 / _N_CLASSES for name in digits})),
            Switch("digit", digits, pixels_for),
        ]
    )


def digit_recognition_datasets(
    n_datasets: int = 10, n_pixels: int = _N_PIXELS, seed: int = 7
) -> List[Dict[str, float]]:
    """Synthesize observed pixel vectors, one per dataset."""
    rng = np.random.default_rng(seed)
    datasets = []
    for index in range(n_datasets):
        digit = index % _N_CLASSES
        observation = {
            "pixel[%d]" % (j,): float(rng.random() < _digit_theta(digit, j))
            for j in range(n_pixels)
        }
        datasets.append(observation)
    return datasets


def digit_recognition_benchmark(
    n_datasets: int = 10, n_pixels: int = _N_PIXELS
) -> PsiBenchmark:
    return PsiBenchmark(
        name="Digit Recognition",
        signature="C x B^%d" % (n_pixels,),
        build=lambda: digit_recognition_program(n_pixels),
        datasets=digit_recognition_datasets(n_datasets, n_pixels),
        query=Id("digit") == "digit_0",
    )


# ---------------------------------------------------------------------------
# TrueSkill: truncated Poisson skills with Binomial performances.
# ---------------------------------------------------------------------------

_MAX_SKILL = 20


def trueskill_program() -> Command:
    """Two-player TrueSkill-style model with Poisson skills (Laurel et al.)."""

    def player(name: str) -> Command:
        skill = "skill_%s" % (name,)
        perf = "perf_%s" % (name,)
        return Sequence(
            [
                Sample(skill, poisson(10.0)),
                Condition(Id(skill) <= _MAX_SKILL),
                Switch(
                    skill,
                    list(range(_MAX_SKILL + 1)),
                    lambda k, perf=perf: Sample(
                        perf, binomial(max(int(k), 1), 0.75)
                    ),
                ),
            ]
        )

    return Sequence([player("a"), player("b")])


def trueskill_datasets(n_datasets: int = 2, seed: int = 11) -> List[Dict[str, float]]:
    rng = np.random.default_rng(seed)
    datasets = []
    program = trueskill_program()
    for _ in range(n_datasets):
        assignment: Dict[str, object] = {}
        while not program.execute(assignment, rng):
            assignment = {}
        datasets.append(
            {"perf_a": float(assignment["perf_a"]), "perf_b": float(assignment["perf_b"])}
        )
    return datasets


def trueskill_benchmark(n_datasets: int = 2) -> PsiBenchmark:
    return PsiBenchmark(
        name="TrueSkill",
        signature="P x Bi^2",
        build=trueskill_program,
        datasets=trueskill_datasets(n_datasets),
        query=Id("skill_a") >= 12,
    )


# ---------------------------------------------------------------------------
# Clinical trial (shared with Table 1) conditioned on patient outcomes.
# ---------------------------------------------------------------------------

def clinical_trial_datasets(
    n_datasets: int = 10, n_patients: int = 50, seed: int = 5
) -> List[Dict[str, float]]:
    rng = np.random.default_rng(seed)
    datasets = []
    for index in range(n_datasets):
        effective = index % 2 == 0
        p_control = 0.35
        p_treated = 0.75 if effective else 0.35
        observation: Dict[str, float] = {}
        for i in range(n_patients):
            observation["control[%d]" % (i,)] = float(rng.random() < p_control)
            observation["treated[%d]" % (i,)] = float(rng.random() < p_treated)
        datasets.append(observation)
    return datasets


def clinical_trial_benchmark(
    n_datasets: int = 10, n_patients: int = 50, n_bins: int = 8
) -> PsiBenchmark:
    return PsiBenchmark(
        name="Clinical Trial",
        signature="B x U^3 x B^%d x B^%d" % (n_patients, n_patients),
        build=lambda: clinical_trial(n_patients=n_patients, n_bins=n_bins),
        datasets=clinical_trial_datasets(n_datasets, n_patients),
        query=Id("is_effective") == 1,
    )


# ---------------------------------------------------------------------------
# Gamma transforms: many-to-one transforms of a Gamma random variable.
# ---------------------------------------------------------------------------

def gamma_transforms_program() -> Command:
    """X ~ Gamma(3, 1); Y = 1/exp(X^2) if X < 1 else 1/ln(X); Z = -Y^3+Y^2+6Y."""
    X = Id("X")
    Y = Id("Y")
    return Sequence(
        [
            Sample("X", gamma(3.0, 1.0)),
            IfElse(
                [
                    (X < 1, _assign("Y", 1.0 / exp_t(X ** 2))),
                    (None, _assign("Y", 1.0 / log_t(X))),
                ]
            ),
            _assign("Z", -(Y ** 3) + Y ** 2 + 6 * Y),
        ]
    )


def _assign(symbol: str, expression) -> Command:
    from ..compiler import Assign

    return Assign(symbol, expression)


def gamma_transforms_datasets() -> List[Event]:
    """Five conditioning constraints on the transformed variable Z."""
    Z = Id("Z")
    return [
        (Z > 0) & (Z < 2),
        Z ** 2 <= 1,
        Z > 4,
        (Z > 1) & (Z < 3),
        Z <= 0.5,
    ]


def gamma_transforms_benchmark() -> PsiBenchmark:
    return PsiBenchmark(
        name="Gamma Transforms",
        signature="G x T x (T+T)",
        build=gamma_transforms_program,
        datasets=gamma_transforms_datasets(),
        query=Id("Y") < 0.5,
    )


# ---------------------------------------------------------------------------
# Student interviews: mixed atomic/Beta GPAs with Binomial outcomes.
# ---------------------------------------------------------------------------

def student_interviews_program(n_students: int = 2) -> Command:
    """GPA mixture with interview/offer counts per student (Laurel et al.)."""

    def student(i: int) -> Command:
        perfect = Id("perfect[%d]" % (i,))
        gpa = Id("gpa[%d]" % (i,))
        from ..distributions import atomic

        return Sequence(
            [
                Sample("perfect[%d]" % (i,), bernoulli(0.2)),
                IfElse(
                    [
                        (perfect == 1, Sample("gpa[%d]" % (i,), atomic(4.0))),
                        (None, Sample("gpa[%d]" % (i,), beta(7.0, 3.0, scale=4.0))),
                    ]
                ),
                IfElse(
                    [
                        (gpa > 3.5, Sample("interviews[%d]" % (i,), binomial(20, 0.8))),
                        (None, Sample("interviews[%d]" % (i,), binomial(20, 0.5))),
                    ]
                ),
                IfElse(
                    [
                        (gpa > 3.5, Sample("offers[%d]" % (i,), binomial(10, 0.6))),
                        (None, Sample("offers[%d]" % (i,), binomial(10, 0.3))),
                    ]
                ),
            ]
        )

    return Sequence(
        [
            Sample("num_fairs", poisson(5.0)),
            Condition(Id("num_fairs") <= 10),
            For(0, n_students, student),
        ]
    )


def student_interviews_datasets(
    n_students: int, n_datasets: int = 10, seed: int = 13
) -> List[Dict[str, float]]:
    rng = np.random.default_rng(seed)
    program = student_interviews_program(n_students)
    datasets = []
    for _ in range(n_datasets):
        assignment: Dict[str, object] = {}
        while not program.execute(assignment, rng):
            assignment = {}
        observation = {}
        for i in range(n_students):
            observation["interviews[%d]" % (i,)] = float(assignment["interviews[%d]" % (i,)])
            observation["offers[%d]" % (i,)] = float(assignment["offers[%d]" % (i,)])
        datasets.append(observation)
    return datasets


def student_interviews_benchmark(n_students: int, n_datasets: int = 10) -> PsiBenchmark:
    return PsiBenchmark(
        name="Student Interviews%d" % (n_students,),
        signature="P x B^%d x Bi^%d x (A+Be)^%d" % (n_students, 2 * n_students, n_students),
        build=lambda: student_interviews_program(n_students),
        datasets=student_interviews_datasets(n_students, n_datasets),
        query=Id("gpa[0]") > 3.5,
    )


# ---------------------------------------------------------------------------
# Markov switching: the hierarchical HMM of Sec. 2.2.
# ---------------------------------------------------------------------------

def markov_switching_datasets(
    n_step: int, n_datasets: int = 10, seed: int = 17
) -> List[Dict[str, float]]:
    datasets = []
    for index in range(n_datasets):
        data = hmm.simulate_data(n_step, seed=seed + index)
        datasets.append(hmm.observation_assignment(data["x"], data["y"]))
    return datasets


def markov_switching_benchmark(n_step: int, n_datasets: int = 10) -> PsiBenchmark:
    return PsiBenchmark(
        name="Markov Switching%d" % (n_step,),
        signature="B x B^%d x N^%d x P^%d" % (n_step, n_step, n_step),
        build=lambda: hmm.program(n_step),
        datasets=markov_switching_datasets(n_step, n_datasets),
        query=Id("separated") == 1,
    )


# ---------------------------------------------------------------------------
# Registries used by the Table 3 and Table 4 benchmark harnesses.
# ---------------------------------------------------------------------------

def table4_benchmarks(scale: float = 1.0) -> List[PsiBenchmark]:
    """The eight benchmarks of Table 4.

    ``scale`` < 1 shrinks dataset counts and model sizes proportionally so
    the suite can run quickly in CI; ``scale=1`` reproduces the paper's
    configuration.
    """

    def scaled(n: int, minimum: int = 1) -> int:
        return max(minimum, int(round(n * scale)))

    return [
        digit_recognition_benchmark(
            n_datasets=scaled(10), n_pixels=scaled(_N_PIXELS, minimum=16)
        ),
        trueskill_benchmark(n_datasets=scaled(2)),
        clinical_trial_benchmark(
            n_datasets=scaled(10), n_patients=scaled(50, minimum=4)
        ),
        gamma_transforms_benchmark(),
        student_interviews_benchmark(n_students=2, n_datasets=scaled(10)),
        student_interviews_benchmark(n_students=scaled(10, minimum=3), n_datasets=scaled(10)),
        markov_switching_benchmark(n_step=3, n_datasets=scaled(10)),
        markov_switching_benchmark(n_step=scaled(100, minimum=10), n_datasets=scaled(10)),
    ]


def table3_benchmarks(scale: float = 1.0) -> List[PsiBenchmark]:
    """The four runtime-variance benchmarks of Table 3."""

    def scaled(n: int, minimum: int = 1) -> int:
        return max(minimum, int(round(n * scale)))

    return [
        digit_recognition_benchmark(
            n_datasets=scaled(10), n_pixels=scaled(_N_PIXELS, minimum=16)
        ),
        markov_switching_benchmark(n_step=3, n_datasets=scaled(10)),
        student_interviews_benchmark(n_students=2, n_datasets=scaled(10)),
        clinical_trial_benchmark(
            n_datasets=scaled(10), n_patients=scaled(50, minimum=4)
        ),
    ]
