"""Model registry: named models with per-model cache budgets.

The registry is the service's source of truth for which models exist and
how much query-cache memory each may use.  Models come from two places:

* the **workloads catalog** -- every paper benchmark by name
  (``hmm20`` for a 20-step hierarchical HMM, ``indian_gpa``, and the
  Table 1 networks ``hiring``/``alarm``/``grass``/``noisy_or``/
  ``clinical_trial``/``heart_disease``), or
* a **serialized SPE file** written with
  :meth:`repro.engine.SpplModel.save` (structural-key JSON).

Each registered model keeps, besides the live :class:`SpplModel`:

* ``payload`` -- its canonical serialized form (the exact bytes worker
  processes deserialize, so every shard holds a bit-identical graph), and
* ``digest`` -- the :func:`repro.spe.spe_digest` of that form, which
  workers recompute after deserializing to prove round-trip fidelity.

:class:`RegistryJournal` makes the dynamic lifecycle **durable**: an
append-only on-disk NDJSON journal of register/unregister events whose
payloads are digest-verified on replay, so models registered on a live
service survive a restart (``--registry-journal PATH``).
"""

from __future__ import annotations

import json
import os
import re
from collections import OrderedDict
from pathlib import Path
from typing import Callable
from typing import Dict
from typing import List
from typing import Optional

from ..engine import SpplModel
from ..spe import DEFAULT_CACHE_ENTRIES
from ..spe import spe_digest
from ..spe import spe_from_json


class RegistryError(KeyError):
    """Unknown model name or malformed catalog specification."""

    def __str__(self) -> str:
        # KeyError renders its message repr-quoted; these are user-facing.
        return self.args[0] if self.args else ""


class RegisteredModel:
    """A served model plus the serialized payload its worker shards load.

    When the registry was given a ``blob_dir``, ``blob_path`` names the
    content-addressed compiled ``.spz`` blob (``<digest>.spz``) every
    worker shard mmaps instead of deserializing ``payload``; otherwise it
    is ``None`` and shards ship the full payload.
    """

    __slots__ = (
        "name", "model", "payload", "digest", "cache_size", "blob_path", "plan",
    )

    def __init__(self, name: str, model: SpplModel, cache_size: Optional[int]):
        self.name = name
        self.model = model
        self.cache_size = cache_size
        self.payload = model.to_json()
        self.digest = spe_digest(model.spe)
        self.blob_path = None
        self.plan = model.plan_mode

    def describe(self) -> Dict:
        """Static description for the ``/v1/models`` endpoint."""
        description = {
            "variables": self.model.variables,
            "nodes": self.model.size(),
            "digest": self.digest,
            "cache_max_entries": self.cache_size,
            "plan": self.plan,
        }
        if self.blob_path is not None:
            description["blob_path"] = self.blob_path
            description["compiled"] = self.model.compiled_info()
        return description


def _catalog_builders() -> Dict[str, Callable[[], SpplModel]]:
    from ..compiler import compile_command
    from ..workloads import indian_gpa
    from ..workloads import table1_models

    def from_command(builder):
        return lambda: SpplModel(compile_command(builder()))

    return {
        "indian_gpa": indian_gpa.model,
        "hiring": from_command(table1_models.hiring),
        "alarm": from_command(table1_models.alarm),
        "grass": from_command(table1_models.grass),
        "noisy_or": from_command(table1_models.noisy_or),
        "clinical_trial": from_command(table1_models.clinical_trial_table1),
        "heart_disease": from_command(table1_models.heart_disease),
    }


#: ``hmm<N>`` catalog names, e.g. ``hmm20`` = 20-step hierarchical HMM.
_HMM_PATTERN = re.compile(r"^hmm(\d{1,3})$")


class ModelRegistry:
    """Named models, each with its own query-cache budget.

    ``default_cache_size`` bounds the :class:`~repro.spe.QueryCache` of
    models registered without an explicit budget (default: the library's
    :data:`~repro.spe.DEFAULT_CACHE_ENTRIES`).  Budgets are per model;
    the service's total cache memory is the sum over registered models
    (and, with a worker pool, each shard holds its own caches with the
    same per-model budgets).
    """

    def __init__(
        self,
        default_cache_size: Optional[int] = None,
        blob_dir=None,
        plan: str = "validated",
    ):
        self.default_cache_size = (
            DEFAULT_CACHE_ENTRIES if default_cache_size is None else default_cache_size
        )
        from ..plan import PLAN_MODES

        if plan not in PLAN_MODES:
            raise ValueError(
                "plan must be one of %s; got %r." % (", ".join(PLAN_MODES), plan)
            )
        #: Query-planner mode every registered model is wrapped with.  The
        #: serving default is ``"validated"``: only corpus-proven
        #: bit-identical rewrites apply, so a planned service answers bit
        #: for bit what an unplanned one would.  ``"off"`` restores the
        #: pre-planner behavior; ``"all"`` applies every exact-math
        #: rewrite (benchmarking).
        self.plan = plan
        #: When set, every prepared model is compiled into a
        #: content-addressed ``.spz`` blob (``<digest>.spz``) under this
        #: directory and the live model queries through the mmap'd
        #: kernel; worker shards are seeded with the blob path + digest
        #: instead of the serialized payload, so all shards share one
        #: physical copy of the compiled tables.
        self.blob_dir = None if blob_dir is None else Path(blob_dir)
        self._models: Dict[str, RegisteredModel] = {}

    # -- Registration ---------------------------------------------------------

    def register(
        self, name: str, model: SpplModel, cache_size: Optional[int] = None
    ) -> RegisteredModel:
        """Register a live model under ``name`` with a cache budget.

        The model is re-wrapped so its cache bound matches the budget
        (an already-adopted cache is never resized behind its owner's
        back)."""
        return self.publish(self.prepare(name, model, cache_size=cache_size))

    def prepare(
        self, name: str, model: SpplModel, cache_size: Optional[int] = None
    ) -> RegisteredModel:
        """Build a :class:`RegisteredModel` without publishing it.

        The two-step ``prepare`` / :meth:`publish` split lets a running
        service ship the prepared payload to every worker shard and
        collect digest acks *before* the name becomes queryable, so a
        failed registration is never observable through ``/v1/query``.
        """
        if not isinstance(name, str) or not name:
            raise RegistryError("Model name must be a non-empty string.")
        if name in self._models:
            raise RegistryError("Model %r is already registered." % (name,))
        if not isinstance(model, SpplModel):
            raise TypeError("register() needs an SpplModel, got %r." % (model,))
        budget = self.default_cache_size if cache_size is None else cache_size
        model = SpplModel(model.spe, cache_size=budget, plan=self.plan)
        registered = RegisteredModel(name, model, budget)
        if self.blob_dir is not None:
            self._attach_blob(registered)
        return registered

    def _attach_blob(self, registered: RegisteredModel) -> None:
        """Compile the model into a content-addressed ``.spz`` blob.

        The blob is named by the expression digest, so re-registering a
        structurally-equal model (or restarting the service) reuses the
        existing file rather than rewriting it, and the attached kernel
        is backed by a read-only mmap of that file.
        """
        self.blob_dir.mkdir(parents=True, exist_ok=True)
        path = self.blob_dir / (registered.digest + ".spz")
        registered.model.compile(path=str(path))
        registered.blob_path = str(path)

    def publish(self, registered: RegisteredModel) -> RegisteredModel:
        """Make a prepared model visible to lookups."""
        if registered.name in self._models:
            raise RegistryError(
                "Model %r is already registered." % (registered.name,)
            )
        self._models[registered.name] = registered
        return registered

    def unregister(self, name: str) -> RegisteredModel:
        """Remove a model from the registry (new lookups fail immediately).

        Returns the removed entry so the caller can finish in-flight work
        against the live model before tearing down worker copies.
        """
        try:
            return self._models.pop(name)
        except KeyError:
            raise RegistryError(
                "Unknown model %r (registered: %s)."
                % (name, ", ".join(sorted(self._models)) or "<none>")
            ) from None

    def register_catalog(
        self, spec: str, cache_size: Optional[int] = None
    ) -> RegisteredModel:
        """Register a workloads-catalog model by name (e.g. ``hmm20``)."""
        return self.register(spec, self._build_catalog(spec), cache_size=cache_size)

    def register_file(
        self, path, name: Optional[str] = None, cache_size: Optional[int] = None
    ) -> RegisteredModel:
        """Register a model from a serialized SPE file (``SpplModel.save``)."""
        with open(path, "r", encoding="utf-8") as handle:
            spe = spe_from_json(handle.read())
        if name is None:
            name = re.sub(r"\.(json|spe)$", "", str(path).rsplit("/", 1)[-1])
        return self.register(name, SpplModel(spe), cache_size=cache_size)

    def build_catalog(self, spec: str) -> SpplModel:
        """Build (without registering) a workloads-catalog model by name.

        Used by the live-registration endpoint, which must prepare the
        model and collect worker acks before publishing the name.
        """
        return self._build_catalog(spec)

    def _build_catalog(self, spec: str) -> SpplModel:
        match = _HMM_PATTERN.match(spec)
        if match:
            from ..workloads import hmm

            return hmm.model(int(match.group(1)))
        builders = _catalog_builders()
        if spec not in builders:
            raise RegistryError(
                "Unknown catalog model %r (expected hmm<N>, %s)."
                % (spec, ", ".join(sorted(builders)))
            )
        return builders[spec]()

    # -- Lookup ---------------------------------------------------------------

    def get(self, name: str) -> RegisteredModel:
        try:
            return self._models[name]
        except KeyError:
            raise RegistryError(
                "Unknown model %r (registered: %s)."
                % (name, ", ".join(sorted(self._models)) or "<none>")
            ) from None

    def names(self) -> List[str]:
        return sorted(self._models)

    def __contains__(self, name: str) -> bool:
        return name in self._models

    def __len__(self) -> int:
        return len(self._models)

    def describe(self) -> Dict[str, Dict]:
        """Static description of every model (``/v1/models``)."""
        return {name: reg.describe() for name, reg in sorted(self._models.items())}

    def clear_caches(self) -> None:
        """Drop every registered model's cached traversal results.

        Uses ``everything=True``: each registered model owns its cache
        exclusively, and scoped clearing would keep entries keyed on
        posterior-subgraph uids (not reachable from the prior) alive.
        The parsed-event LRU is dropped too — a clear must force full
        recomputation, including re-parsing query strings.
        """
        for registered in self._models.values():
            registered.model.clear_cache(everything=True)
            registered.model.clear_event_cache()


# ---------------------------------------------------------------------------
# Durable registry: the on-disk lifecycle journal.
# ---------------------------------------------------------------------------

class JournalError(RuntimeError):
    """A journal record whose payload cannot be trusted (digest mismatch)."""


#: Compact once at least this many dead records accumulate *and* the dead
#: outnumber the live entries (unregister-heavy churn would otherwise grow
#: the file without bound while the live set stays small).
JOURNAL_COMPACT_MIN_DEAD = 8


class RegistryJournal:
    """Append-only on-disk journal of dynamic register/unregister events.

    One JSON record per line::

        {"op": "register", "name": ..., "payload": ..., "digest": ..., "cache_size": ...}
        {"op": "register", "name": ..., "path": "<blob>.spz", "digest": ..., "cache_size": ...}
        {"op": "unregister", "name": ...}

    Register records are **content-addressed** when the registry keeps
    compiled blobs (``blob_dir``): instead of embedding the full
    serialized payload, the record carries the path of the model's
    ``<digest>.spz`` blob.  Restore re-reads the canonical payload out
    of the blob (hash-verified against the journaled digest) and then
    runs the same digest verification as payload records — a missing or
    corrupted blob raises :class:`JournalError` rather than silently
    serving the wrong model.

    Write-ahead-log discipline:

    * **Appends are durable**: each record is flushed and fsynced before
      the lifecycle endpoint acknowledges, so an acked registration
      survives a crash.
    * **Replay is torn-tail tolerant**: a crash mid-append leaves a
      partial (or otherwise undecodable) last line; replay stops cleanly
      at the last valid record and the tail is truncated away before the
      next append, so the file always ends on a record boundary.
      Anything *after* the first bad record is untrustworthy by WAL
      convention and is discarded with it.
    * **Restore is digest-verified**: every surviving payload is
      deserialized and its :func:`repro.spe.spe_digest` recomputed; a
      mismatch with the journaled digest raises :class:`JournalError`
      rather than silently serving a corrupted model.
    * **Replay is idempotent**: restoring twice (or restoring on top of
      startup ``--model`` flags) skips names the registry already holds.
    * **Compaction**: when dead records (unregisters and the registers
      they cancel) dominate the live set, the journal is rewritten as
      one register record per live model via an atomic ``os.replace``.
    """

    def __init__(self, path, compact_min_dead: int = JOURNAL_COMPACT_MIN_DEAD):
        self.path = Path(path)
        self.compact_min_dead = compact_min_dead
        self.compactions = 0
        self.truncated_bytes = 0
        self._live: "OrderedDict[str, Dict]" = OrderedDict()
        self._dead = 0
        self._events = 0
        self._valid_bytes = 0
        self._replayed = False
        self._needs_truncate = False
        self._handle = None

    # -- Replay / restore -----------------------------------------------------

    def replay(self) -> Dict[str, Dict]:
        """Read the journal; returns the net surviving register specs.

        Read-only: the torn tail (if any) is measured here but only
        physically truncated right before the next append.
        """
        self._live = OrderedDict()
        self._dead = 0
        self._events = 0
        self._valid_bytes = 0
        self.truncated_bytes = 0
        if self.path.exists():
            data = self.path.read_bytes()
            offset = 0
            while offset < len(data):
                newline = data.find(b"\n", offset)
                if newline < 0:
                    break  # unterminated tail: a crash mid-append
                entry = self._decode(data[offset:newline])
                if entry is None:
                    break  # undecodable record: stop at the last valid one
                offset = newline + 1
                self._valid_bytes = offset
                self._apply(entry)
            self.truncated_bytes = len(data) - self._valid_bytes
        self._needs_truncate = self.truncated_bytes > 0
        self._replayed = True
        return {name: dict(spec) for name, spec in self._live.items()}

    def restore(self, registry: ModelRegistry) -> List[str]:
        """Rebuild the surviving journaled models into ``registry``.

        Each payload is deserialized and digest-verified before it is
        published.  Names the registry already holds (startup flags, or
        an earlier restore) are skipped, which makes a double replay +
        restore idempotent.  Returns the names actually restored.
        """
        if not self._replayed:
            self.replay()
        restored = []
        for name, spec in self._live.items():
            if name in registry:
                continue
            payload = spec.get("payload")
            if payload is None:
                # Content-addressed record: the canonical payload lives
                # inside the compiled blob, hash-verified on read.
                from ..spe import read_spz_payload

                try:
                    payload = read_spz_payload(
                        spec["path"], expected_digest=spec["digest"]
                    )
                except Exception as error:
                    raise JournalError(
                        "Journaled model %r cannot be restored from blob "
                        "%s: %s: %s"
                        % (name, spec["path"], type(error).__name__, error)
                    ) from error
            spe = spe_from_json(payload)
            digest = spe_digest(spe)
            if digest != spec["digest"]:
                raise JournalError(
                    "Journaled model %r fails digest verification: journal "
                    "says %s, payload rebuilds to %s."
                    % (name, spec["digest"], digest)
                )
            registry.publish(
                registry.prepare(name, SpplModel(spe), cache_size=spec["cache_size"])
            )
            restored.append(name)
        return restored

    # -- Recording ------------------------------------------------------------

    def record_register(self, registered: RegisteredModel) -> None:
        """Journal one successful live registration (durable before ack).

        Models with an attached compiled blob are recorded by blob path
        (content-addressed, the blob embeds the canonical payload);
        everything else embeds the payload in the record.
        """
        entry = {
            "op": "register",
            "name": registered.name,
            "digest": registered.digest,
            "cache_size": registered.cache_size,
        }
        if registered.blob_path is not None:
            entry["path"] = registered.blob_path
        else:
            entry["payload"] = registered.payload
        self._append(entry)

    def record_unregister(self, name: str) -> None:
        """Journal one successful live unregistration (durable before ack)."""
        self._append({"op": "unregister", "name": name})

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def stats(self) -> Dict:
        """Journal health for the ``/v1/stats`` endpoint."""
        return {
            "path": str(self.path),
            "live": len(self._live),
            "dead": self._dead,
            "events": self._events,
            "compactions": self.compactions,
            "truncated_bytes": self.truncated_bytes,
        }

    def metrics_samples(self):
        """Journal health as ``(counters, gauges)`` sample lists.

        The same numbers :meth:`stats` reports, mapped to stable dotted
        metric names with the correct Prometheus instrument type (the
        cumulative event/compaction/truncation tallies are counters; the
        live/dead record counts describe the file's current state and
        are gauges).  Rendered by ``GET /metrics``.
        """
        counters = [
            ("repro.journal.events", None, self._events),
            ("repro.journal.compactions", None, self.compactions),
            ("repro.journal.truncated_bytes", None, self.truncated_bytes),
        ]
        gauges = [
            ("repro.journal.live_records", None, len(self._live)),
            ("repro.journal.dead_records", None, self._dead),
        ]
        return counters, gauges

    # -- Internals ------------------------------------------------------------

    @staticmethod
    def _decode(line: bytes) -> Optional[Dict]:
        """One record, or ``None`` for anything that cannot be trusted."""
        try:
            entry = json.loads(line)
        except (ValueError, UnicodeDecodeError):
            return None
        if not isinstance(entry, dict) or not isinstance(entry.get("name"), str) \
                or not entry["name"]:
            return None
        if entry.get("op") == "unregister":
            return entry
        if entry.get("op") == "register":
            cache_size = entry.get("cache_size")
            source_ok = isinstance(entry.get("payload"), str) or \
                isinstance(entry.get("path"), str)
            if source_ok and isinstance(entry.get("digest"), str) \
                    and (cache_size is None or isinstance(cache_size, int)):
                return entry
        return None

    def _apply(self, entry: Dict) -> None:
        """Fold one record into the net live/dead state."""
        self._events += 1
        name = entry["name"]
        if entry["op"] == "register":
            if self._live.pop(name, None) is not None:
                self._dead += 1  # the superseded register
            spec = {
                "digest": entry["digest"],
                "cache_size": entry.get("cache_size"),
            }
            if "payload" in entry:
                spec["payload"] = entry["payload"]
            else:
                spec["path"] = entry["path"]
            self._live[name] = spec
        else:
            if self._live.pop(name, None) is not None:
                self._dead += 2  # the register it cancels, plus itself
            else:
                self._dead += 1  # an unregister with nothing to cancel

    def _append(self, entry: Dict) -> None:
        if not self._replayed:
            self.replay()
        if self._handle is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            if self._needs_truncate and self.path.exists():
                # Drop the torn tail so the new record starts on a
                # record boundary (appending after a partial line would
                # corrupt both records on the next replay).
                with open(self.path, "r+b") as handle:
                    handle.truncate(self._valid_bytes)
                self._needs_truncate = False
                self.truncated_bytes = 0
            self._handle = open(self.path, "ab")
        line = (json.dumps(entry, separators=(",", ":")) + "\n").encode("utf-8")
        try:
            self._handle.write(line)
            self._handle.flush()
            os.fsync(self._handle.fileno())
        except OSError:
            # A failed append (ENOSPC, transient EIO) may have left part
            # of the record on disk; un-truncated, the fragment would
            # glue onto the next successful record and take it (and
            # everything after) down on replay.  Close the handle and
            # force a truncate back to the last durable record before
            # any future append.
            self.close()
            self._needs_truncate = True
            raise
        self._valid_bytes = self._handle.tell()
        self._apply(entry)
        if self._dead >= self.compact_min_dead and self._dead > len(self._live):
            self.compact()

    def compact(self) -> None:
        """Rewrite the journal as one register record per live model.

        Atomic: the replacement is fully written and fsynced to a
        sibling temp file, then ``os.replace``d over the journal, so a
        crash mid-compaction leaves either the old or the new file.
        """
        temp = self.path.with_name(self.path.name + ".compact")
        with open(temp, "wb") as handle:
            for name, spec in self._live.items():
                entry = {"op": "register", "name": name, **spec}
                handle.write(
                    (json.dumps(entry, separators=(",", ":")) + "\n").encode("utf-8")
                )
            handle.flush()
            os.fsync(handle.fileno())
        self.close()
        os.replace(temp, self.path)
        self._handle = open(self.path, "ab")
        self._valid_bytes = self._handle.tell()
        self._dead = 0
        self._events = len(self._live)
        self.truncated_bytes = 0
        self._needs_truncate = False
        self.compactions += 1
