"""The multi-stage SPPL inference workflow: model, condition, query.

:class:`SpplModel` packages a translated sum-product expression together
with the three queries of Fig. 1:

* ``simulate`` / ``sample``  -- draw program variables from the joint,
* ``prob`` / ``logprob``     -- exact probability of an event,
* ``condition`` / ``observe`` -- a *new model* for the posterior.

Because conditioning returns another :class:`SpplModel`, expensive stages
(translation, conditioning on a dataset) are computed once and reused across
any number of downstream queries — the multi-stage workflow the paper
contrasts with single-stage solvers such as PSI (Fig. 7).
"""

from __future__ import annotations

import ast
from typing import Dict
from typing import Iterable
from typing import List
from typing import Optional
from typing import Union

import numpy as np

from ..compiler import Command
from ..compiler import SpplParser
from ..compiler import compile_command
from ..compiler import compile_sppl
from ..compiler import render_spe
from ..events import Event
from ..spe import Memo
from ..spe import SPE

EventLike = Union[Event, str]


def parse_event(text: str, scope: Iterable[str]) -> Event:
    """Parse a textual event (e.g. ``"X > 1 and Y == 'a'"``) against a scope."""
    parser = SpplParser()
    parser.randoms = set(scope)
    try:
        expression = ast.parse(text, mode="eval").body
    except SyntaxError as error:
        raise ValueError("Invalid event syntax %r: %s" % (text, error)) from error
    value = parser._eval(expression)
    return parser._to_event(value)


class SpplModel:
    """A probabilistic model backed by a sum-product expression."""

    def __init__(self, spe: SPE):
        if not isinstance(spe, SPE):
            raise TypeError("SpplModel requires a sum-product expression.")
        self.spe = spe

    # -- Construction ---------------------------------------------------------

    @classmethod
    def from_source(cls, source: str, constants: Dict[str, object] = None) -> "SpplModel":
        """Translate an SPPL source program into a model."""
        return cls(compile_sppl(source, constants=constants))

    @classmethod
    def from_command(cls, command: Command) -> "SpplModel":
        """Translate a command-IR program into a model."""
        return cls(compile_command(command))

    # -- Introspection --------------------------------------------------------

    @property
    def variables(self) -> List[str]:
        """Names of the program variables defined by the model."""
        return sorted(self.spe.scope)

    def size(self) -> int:
        """Number of unique nodes in the underlying expression graph."""
        return self.spe.size()

    def tree_size(self) -> int:
        """Size of the fully-unrolled (unoptimized) expression tree."""
        return self.spe.tree_size()

    def to_source(self) -> str:
        """Render the model back into SPPL source code (Appendix E)."""
        return render_spe(self.spe)

    def __repr__(self) -> str:
        return "SpplModel(variables=%s, size=%d)" % (self.variables, self.size())

    # -- Queries --------------------------------------------------------------

    def _resolve_event(self, event: EventLike) -> Event:
        if isinstance(event, Event):
            return event
        if isinstance(event, str):
            return parse_event(event, self.spe.scope)
        raise TypeError("Expected an Event or event string, got %r." % (event,))

    def logprob(self, event: EventLike, memo: Memo = None) -> float:
        """Exact log probability of an event."""
        return self.spe.logprob(self._resolve_event(event), memo=memo)

    def prob(self, event: EventLike, memo: Memo = None) -> float:
        """Exact probability of an event."""
        return self.spe.prob(self._resolve_event(event), memo=memo)

    def logpdf(self, assignment: Dict[str, object]) -> float:
        """Log density of a point assignment to non-transformed variables."""
        return self.spe.logpdf(assignment)

    def condition(self, event: EventLike) -> "SpplModel":
        """Return a new model for the posterior given a positive-probability event."""
        return SpplModel(self.spe.condition(self._resolve_event(event)))

    def constrain(self, assignment: Dict[str, object]) -> "SpplModel":
        """Return a new model given equality observations (may be measure zero)."""
        return SpplModel(self.spe.constrain(assignment))

    #: ``observe`` is an alias for :meth:`constrain`, matching common PPL APIs.
    observe = constrain

    def sample(self, n: int = None, rng=None, seed: int = None):
        """Draw samples of all program variables.

        Returns a single assignment dict when ``n`` is None, otherwise a list.
        """
        rng = self._rng(rng, seed)
        return self.spe.sample(rng, n)

    #: ``simulate`` is the paper's name for forward sampling.
    simulate = sample

    def sample_subset(self, symbols: Iterable[str], n: int = None, rng=None, seed: int = None):
        """Draw samples of a subset of the program variables."""
        rng = self._rng(rng, seed)
        return self.spe.sample_subset(symbols, rng, n)

    @staticmethod
    def _rng(rng, seed: Optional[int]):
        if rng is not None:
            return rng
        return np.random.default_rng(seed)

    # -- Derived exact queries -------------------------------------------------

    def expectation(self, symbol: str) -> float:
        """Exact expectation of a numeric, non-transformed variable."""
        from ..spe import expectation

        return expectation(self.spe, symbol)

    def variance(self, symbol: str) -> float:
        """Exact variance of a numeric, non-transformed variable."""
        from ..spe import variance

        return variance(self.spe, symbol)

    def mutual_information(self, event_a: EventLike, event_b: EventLike) -> float:
        """Exact mutual information (nats) between the indicators of two events."""
        from ..spe import mutual_information

        return mutual_information(
            self.spe, self._resolve_event(event_a), self._resolve_event(event_b)
        )

    def probability_table(self, symbol: str, values: Iterable) -> Dict[object, float]:
        """Exact marginal probabilities of each value of a variable."""
        from ..spe import probability_table

        return probability_table(self.spe, symbol, values)

    def cdf_table(self, symbol: str, grid: Iterable[float]) -> Dict[float, float]:
        """Exact marginal CDF of a numeric variable on a grid of points."""
        from ..spe import cdf_table

        return cdf_table(self.spe, symbol, list(grid))

    def entropy(self, symbol: str, values: Iterable) -> float:
        """Exact entropy (nats) of a finite-valued variable."""
        from ..spe import entropy

        return entropy(self.spe, symbol, values)

    def support(self, symbol: str):
        """The values a finite-valued variable can take."""
        from ..spe import marginal_support

        return marginal_support(self.spe, symbol)

    def to_dot(self) -> str:
        """Graphviz DOT source for the underlying expression graph."""
        from ..spe import to_dot

        return to_dot(self.spe)

    # -- Persistence -------------------------------------------------------------

    def to_json(self, indent: int = None) -> str:
        """Serialize the model (including conditioned posteriors) to JSON."""
        from ..spe import spe_to_json

        return spe_to_json(self.spe, indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "SpplModel":
        """Reconstruct a model from :meth:`to_json` output."""
        from ..spe import spe_from_json

        return cls(spe_from_json(text))

    def save(self, path) -> None:
        """Write the serialized model to a file path."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json())

    @classmethod
    def load(cls, path) -> "SpplModel":
        """Load a model previously written with :meth:`save`."""
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_json(handle.read())
