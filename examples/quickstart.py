"""Quickstart: the Indian GPA problem, end to end.

Demonstrates the full SPPL workflow of Fig. 1 of the paper:

1. write a generative probabilistic program (mixed discrete/continuous),
2. translate it into a sum-product expression (``SpplModel.from_source``),
3. query exact prior probabilities,
4. condition on an event to obtain a posterior *model*,
5. reuse that posterior for further exact queries and for sampling.

Run with::

    python examples/quickstart.py
"""

from repro import Id
from repro import SpplModel

PROGRAM = """
Nationality ~ choice({'India': 0.5, 'USA': 0.5})
if (Nationality == 'India'):
    Perfect ~ bernoulli(p=0.10)
    if Perfect:
        GPA ~ atomic(10)
    else:
        GPA ~ uniform(0, 10)
else:
    Perfect ~ bernoulli(p=0.15)
    if Perfect:
        GPA ~ atomic(4)
    else:
        GPA ~ uniform(0, 4)
"""


def main() -> None:
    nationality, perfect, gpa = Id("Nationality"), Id("Perfect"), Id("GPA")

    # Stage 1: translate the program into a sum-product expression.
    model = SpplModel.from_source(PROGRAM)
    print("variables:", model.variables)
    print("expression size (nodes):", model.size())

    # Stage 2: exact prior queries.
    print("\n-- prior --")
    print("P(Nationality = USA)   =", model.prob(nationality == "USA"))
    print("P(Perfect = 1)         =", model.prob(perfect == 1))
    print("P(GPA <= 4)            =", model.prob(gpa <= 4))
    print("P(GPA = 4) (atom!)     =", model.prob(gpa == 4))

    # Stage 3: condition on an event mixing nominal and continuous constraints.
    event = ((nationality == "USA") & (gpa > 3)) | ((gpa > 8) & (gpa < 10))
    print("\nconditioning on:", event)
    print("P(event) =", model.prob(event))
    posterior = model.condition(event)

    # Stage 4: reuse the posterior for as many queries as needed.
    print("\n-- posterior --")
    print("P(Nationality = India | event) =", posterior.prob(nationality == "India"))
    print("P(Perfect = 1 | event)         =", posterior.prob(perfect == 1))
    print("P(GPA > 3.9 | event)           =", posterior.prob(gpa > 3.9))

    # Stage 5: sampling (simulate) from prior and posterior.
    print("\n-- samples --")
    print("prior samples:    ", model.sample(3, seed=0))
    print("posterior samples:", posterior.sample(3, seed=0))

    # Events can also be given as strings using the program syntax.
    print("\nstring query P(GPA > 3 and Nationality == 'USA') =",
          model.prob("GPA > 3 and Nationality == 'USA'"))


if __name__ == "__main__":
    main()
