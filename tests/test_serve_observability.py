"""End-to-end query tracing, /metrics exposition, and the flight recorder.

The observability acceptance bar this file pins:

* A query through a 2-worker sharded service yields a retrievable trace
  (``GET /v1/trace/<id>``) showing micro-batch coalescing, shard
  dispatch, the planner pass outcome, the compiled-vs-interpreted engine
  route, and result-cache hit/miss — with the worker's span fragment
  grafted across the process boundary.
* ``GET /metrics`` renders every migrated counter as well-formed
  Prometheus text exposition (version 0.0.4).
* ``/v1/stats`` snapshots are consistent: every loop-owned counter is
  read in one synchronous pass, so mutations that land while the
  snapshot awaits worker pipe round trips cannot tear it.
* The flight recorder ring is bounded, and the slow-query log captures
  outliers as structured JSON lines (span tree included when sampled).
"""

import asyncio
import json

import pytest

from repro.obs import FlightRecorder
from repro.obs import MetricsRegistry
from repro.obs import Trace
from repro.serve import AsyncServeClient
from repro.serve import InferenceService
from repro.serve import LatencyHistogram
from repro.serve import ModelRegistry
from repro.serve import ServeClientError
from repro.serve import value_of
from repro.workloads import indian_gpa


def walk(node):
    """Flatten a serialized span tree into a list of span dicts."""
    yield node
    for child in node.get("children", []):
        yield from walk(child)


def names_of(tree):
    return [node["name"] for node in walk(tree)]


def find(tree, name):
    return [node for node in walk(tree) if node["name"] == name]


async def _serve(registry, **kwargs):
    service = InferenceService(registry, **kwargs)
    host, port = await service.start()
    return service, AsyncServeClient(host, port)


class TestTraceEndToEnd:
    def test_opt_in_trace_in_process(self):
        """A "trace": true request yields the full span tree: queue,
        batch, cache decision, engine route; a repeat of the same query
        shows the result-cache hit (and no engine span)."""

        async def main():
            registry = ModelRegistry()
            registry.register_catalog("indian_gpa")
            service, client = await _serve(registry, workers=0)
            try:
                request = {"model": "indian_gpa", "kind": "logprob",
                           "event": "GPA > 3", "trace": True}
                first = await client.query(request)
                second = await client.query(request)
                return (
                    first, second,
                    await client.trace(first["trace"]),
                    await client.trace(second["trace"]),
                )
            finally:
                await service.close()

        first, second, cold, warm = asyncio.run(main())
        assert first["ok"] and second["ok"]
        assert value_of(first) == indian_gpa.model().logprob("GPA > 3")
        assert cold["trace_id"] == first["trace"] != second["trace"]
        assert cold["model"] == "indian_gpa" and cold["kind"] == "logprob"

        tree = cold["spans"]
        assert tree["name"] == "request"
        assert tree["tags"] == {"model": "indian_gpa", "kind": "logprob"}
        (queue,) = find(tree, "scheduler.queue")
        assert queue["tags"]["batch_id"] >= 1
        assert queue["tags"]["batch_size"] >= 1
        (batch,) = find(tree, "batch")
        assert batch["tags"]["n"] >= 1
        (cache,) = find(tree, "result_cache")
        assert cache["tags"]["misses"] == 1 and cache["tags"]["hits"] == 0
        (engine,) = find(tree, "engine.logprob_batch")
        assert engine["tags"]["route"] in ("compiled", "interpreted")

        # Warm repeat: answered from the result cache, engine untouched.
        (cache,) = find(warm["spans"], "result_cache")
        assert cache["tags"]["hits"] == 1 and cache["tags"]["misses"] == 0
        assert not find(warm["spans"], "engine.logprob_batch")

    def test_sharded_trace_shows_dispatch_planner_and_kernel_route(
        self, tmp_path
    ):
        """The acceptance check: a query through a 2-worker service
        yields a trace with coalescing, shard dispatch, the worker's
        grafted fragment, a planner pass outcome, and the compiled
        kernel route (blob-backed workers mmap compiled models)."""

        async def main():
            registry = ModelRegistry(blob_dir=tmp_path / "blobs",
                                     plan="validated")
            registry.register_catalog("noisy_or")
            service, client = await _serve(registry, workers=2, window=0.001)
            try:
                response = await client.query({
                    "model": "noisy_or", "kind": "logprob",
                    "event": "disease_0 == 1 and disease_1 == 1",
                    "trace": True,
                })
                return response, await client.trace(response["trace"])
            finally:
                await service.close()

        response, entry = asyncio.run(main())
        assert response["ok"], response
        tree = entry["spans"]
        seen = names_of(tree)
        assert "scheduler.queue" in seen          # micro-batch coalescing
        assert "shard.dispatch" in seen           # shard dispatch
        assert "worker.batch" in seen             # grafted worker fragment
        (dispatch,) = find(tree, "shard.dispatch")
        assert dispatch["tags"]["shard"] in (0, 1)
        (worker,) = find(tree, "worker.batch")
        assert worker["tags"]["worker"] == dispatch["tags"]["shard"]
        # Planner pass outcome: the corpus-validated disjoint_factor
        # rewrite applies to this conjunction, and its decision is an
        # event on the trace keyed by the input digest.
        (plan,) = find(tree, "plan.disjoint_factor")
        assert plan["tags"]["outcome"] == "applied"
        assert len(plan["tags"]["digest"]) == 12
        # Engine route: blob-backed workers serve the compiled kernel.
        routes = {
            node["tags"]["route"] for node in find(tree, "engine.logprob_batch")
        }
        assert routes == {"compiled"}
        assert find(tree, "kernel.sweep")          # the columnar sweep itself

    def test_untraced_requests_echo_ids_but_record_nothing(self):
        async def main():
            registry = ModelRegistry()
            registry.register_catalog("indian_gpa")
            service, client = await _serve(registry, workers=0)
            try:
                response = await client.query(
                    {"model": "indian_gpa", "kind": "logprob", "event": "GPA > 3"}
                )
                assert response["ok"]
                # The id is echoed for correlation...
                assert isinstance(response["trace"], str)
                # ...but no span tree was built or retained for it.
                with pytest.raises(ServeClientError, match="404"):
                    await client.trace(response["trace"])
                stats = await client.stats()
                assert stats["trace"]["recorded"] == 0
            finally:
                await service.close()

        asyncio.run(main())

    def test_trace_sample_records_without_per_request_flag(self):
        async def main():
            registry = ModelRegistry()
            registry.register_catalog("indian_gpa")
            service, client = await _serve(
                registry, workers=0, trace_sample=1.0
            )
            try:
                response = await client.query(
                    {"model": "indian_gpa", "kind": "logprob", "event": "GPA > 3"}
                )
                entry = await client.trace(response["trace"])
                assert find(entry["spans"], "engine.logprob_batch")
            finally:
                await service.close()

        asyncio.run(main())

    def test_wire_errors_echo_a_trace_id(self):
        async def main():
            registry = ModelRegistry()
            registry.register_catalog("indian_gpa")
            service, client = await _serve(registry, workers=0)
            try:
                bad = await client.query({"model": "indian_gpa"})
                missing = await client.query(
                    {"model": "nope", "kind": "logprob", "event": "X < 1"}
                )
                return bad, missing
            finally:
                await service.close()

        bad, missing = asyncio.run(main())
        assert not bad["ok"] and isinstance(bad["trace"], str)
        assert missing["error_kind"] == "RegistryError"
        assert isinstance(missing["trace"], str)


class TestMetricsEndpoint:
    @staticmethod
    def validate_exposition(text):
        """Structural validation of Prometheus text format 0.0.4."""
        declared = {}
        samples = []
        for line in text.splitlines():
            if not line:
                continue
            if line.startswith("# TYPE "):
                _, _, name, kind = line.split(" ")
                assert kind in ("counter", "gauge", "histogram"), line
                declared[name] = kind
                continue
            assert not line.startswith("#"), line
            metric, _, value = line.rpartition(" ")
            float(value)  # every sample value parses as a number
            name = metric.split("{", 1)[0]
            base = name
            for suffix in ("_bucket", "_sum", "_count"):
                if base.endswith(suffix):
                    base = base[: -len(suffix)]
            assert base in declared, "undeclared sample %r" % (line,)
            assert "." not in name  # dotted names are mangled
            samples.append((name, value))
        return declared, samples

    def test_metrics_exposes_migrated_counters(self):
        async def main():
            registry = ModelRegistry()
            registry.register_catalog("indian_gpa")
            service, client = await _serve(registry, workers=0)
            try:
                for _ in range(3):
                    await client.query(
                        {"model": "indian_gpa", "kind": "logprob",
                         "event": "GPA > 3"}
                    )
                return await client.metrics(), await client.stats()
            finally:
                await service.close()

        text, stats = asyncio.run(main())
        declared, samples = self.validate_exposition(text)
        values = dict(samples)
        assert declared["repro_scheduler_requests_total"] == "counter"
        assert values["repro_scheduler_requests_total"] == "3"
        assert declared["repro_scheduler_shed_requests_total"] == "counter"
        assert declared["repro_http_connection_sheds_total"] == "counter"
        assert declared["repro_trace_ring_entries"] == "gauge"
        assert declared["repro_scheduler_latency_logprob"] == "histogram"
        # /v1/stats reports the same numbers (shape back-compat).
        assert stats["scheduler"]["requests"] == 3
        # Labeled per-model cache samples from the backend walk.
        assert 'repro_result_cache_hits_total{model="indian_gpa"}' in text
        assert 'repro_result_cache_misses_total{model="indian_gpa"}' in text

    def test_histogram_buckets_are_cumulative_and_close_with_inf(self):
        registry = MetricsRegistry()
        histogram = LatencyHistogram()
        for seconds in (0.0001, 0.001, 0.01, 0.01):
            histogram.record(seconds)
        registry.histogram("repro.test.latency", histogram)
        text = registry.render()
        lines = [l for l in text.splitlines() if l.startswith("repro_test_latency")]
        buckets = [l for l in lines if "_bucket" in l]
        counts = [int(l.rsplit(" ", 1)[1]) for l in buckets]
        assert counts == sorted(counts)  # cumulative
        assert buckets[-1].startswith('repro_test_latency_bucket{le="+Inf"}')
        assert counts[-1] == 4
        assert "repro_test_latency_count 4" in lines
        (sum_line,) = [l for l in lines if l.startswith("repro_test_latency_sum")]
        assert float(sum_line.rsplit(" ", 1)[1]) == pytest.approx(0.0211)

    def test_journal_samples_rendered_when_journal_present(self, tmp_path):
        async def main():
            from repro.serve import RegistryJournal

            registry = ModelRegistry()
            registry.register_catalog("indian_gpa")
            journal = RegistryJournal(tmp_path / "registry.journal")
            service, client = await _serve(registry, workers=0, journal=journal)
            try:
                await client.register_model("gpa_live", catalog="indian_gpa")
                return await client.metrics()
            finally:
                await service.close()

        text = asyncio.run(main())
        declared, _ = TestMetricsEndpoint.validate_exposition(text)
        assert declared["repro_journal_events_total"] == "counter"
        assert declared["repro_journal_live_records"] == "gauge"


class TestStatsSnapshotConsistency:
    def test_mutations_during_awaited_shard_stats_do_not_tear_snapshot(self):
        """Regression for the torn-snapshot bug: every loop-owned counter
        must be read before the first await.  A shard-stats call that
        (maliciously) bumps counters mid-await must not leak into the
        snapshot that was already taken."""

        async def main():
            registry = ModelRegistry()
            registry.register_catalog("indian_gpa")
            service, client = await _serve(registry, workers=0)
            try:
                await client.query(
                    {"model": "indian_gpa", "kind": "logprob", "event": "GPA > 3"}
                )

                class EvilPool:
                    async def shard_stats(_self):
                        # Counters move while the snapshot awaits the
                        # "pipe round trip".
                        service.scheduler._shed.inc(100)
                        service._connection_sheds.inc(100)
                        await asyncio.sleep(0)
                        return []

                service._pool = EvilPool()
                stats = await service._stats()
                return stats
            finally:
                service._pool = None
                await service.close()

        stats = asyncio.run(main())
        # The synchronous pass happened before the await: none of the
        # mid-await increments are visible in this snapshot.
        assert stats["scheduler"]["shed"] == 0
        assert stats["http"]["connection_sheds"] == 0
        assert stats["backend"]["shards"] == []

    def test_pool_respawn_and_requeue_move_together(self):
        """The supervision counters are incremented in one synchronous
        step (no await between them), so ``respawns >= requeued_batches``
        holds at every event-loop tick — a snapshot can never observe a
        requeued batch whose respawn has not been counted."""
        from repro.serve import WorkerPool

        pool = WorkerPool.__new__(WorkerPool)
        pool.metrics = MetricsRegistry()
        pool._respawns = pool.metrics.counter("repro.pool.respawns")
        pool._requeued = pool.metrics.counter("repro.pool.requeued_batches")
        pool._note_respawn(0, 1, is_batch=True)
        assert pool.respawns == 1 and pool.requeued_batches == 1
        pool._note_respawn(0, 1, is_batch=False)
        assert pool.respawns == 2 and pool.requeued_batches == 1
        assert pool.respawns >= pool.requeued_batches


class TestFlightRecorder:
    def test_ring_is_bounded_and_evicts_oldest(self):
        recorder = FlightRecorder(capacity=2)
        for index in range(3):
            recorder.observe(Trace(trace_id="t%d" % index), "t%d" % index, 1.0)
        assert recorder.get("t0") is None
        assert recorder.get("t1") is not None
        assert recorder.get("t2") is not None
        stats = recorder.stats()
        assert stats["recorded"] == 3 and stats["evicted"] == 1
        assert stats["entries"] == 2

    def test_slow_query_log_writes_structured_lines(self, tmp_path):
        log_path = tmp_path / "slow.jsonl"
        recorder = FlightRecorder(
            capacity=4, slow_query_ms=10.0, slow_query_log=str(log_path)
        )
        trace = Trace(trace_id="slow-1")
        recorder.observe(trace, "slow-1", 25.0, model="m", kind="logprob")
        recorder.observe(None, "fast-1", 1.0, model="m", kind="logprob")
        recorder.observe(None, "slow-2", 50.0, model="m", kind="logpdf")
        recorder.close()
        lines = [
            json.loads(line)
            for line in log_path.read_text().splitlines()
        ]
        assert [line["trace_id"] for line in lines] == ["slow-1", "slow-2"]
        first, second = lines
        assert first["duration_ms"] == 25.0
        assert first["threshold_ms"] == 10.0
        assert first["spans"]["name"] == "request"  # sampled: tree included
        assert "spans" not in second  # unsampled outlier: still logged
        assert second["kind"] == "logpdf"
        assert recorder.stats()["slow_logged"] == 2

    def test_slow_query_threshold_end_to_end(self, tmp_path):
        """--slow-query-ms without --trace-sample implies full sampling,
        so the outlier's log line carries its span tree."""
        log_path = tmp_path / "slow.jsonl"

        async def main():
            registry = ModelRegistry()
            registry.register_catalog("indian_gpa")
            service, client = await _serve(
                registry, workers=0,
                slow_query_ms=0.0, slow_query_log=str(log_path),
            )
            assert service.trace_sample == 1.0  # implied
            try:
                await client.query(
                    {"model": "indian_gpa", "kind": "logprob", "event": "GPA > 3"}
                )
                stats = await client.stats()
                return stats
            finally:
                await service.close()

        stats = asyncio.run(main())
        assert stats["trace"]["slow_logged"] >= 1
        record = json.loads(log_path.read_text().splitlines()[0])
        assert record["model"] == "indian_gpa"
        assert "scheduler.queue" in names_of(record["spans"])


class TestLatencyHistogramSum:
    def test_total_accumulates_recorded_seconds(self):
        histogram = LatencyHistogram()
        histogram.record(0.25)
        histogram.record(0.5)
        assert histogram.total == pytest.approx(0.75)
        assert histogram.count == 2
