"""Exact inference on transformed random variables (Fig. 4, Appendix C.3).

The derived variable Z is a *many-to-one*, piecewise transform of a Gaussian
X.  Conditioning on an event phrased in terms of Z (here ``Z**2 <= 4 and
Z >= 0``) requires solving the transform's preimage symbolically; the
posterior splits the prior into three disjoint X-regions whose weights the
paper reports as roughly 0.16 / 0.49 / 0.35.

Run with::

    python examples/transformed_variables.py
"""

from repro import Id
from repro import SpplModel

PROGRAM = """
X ~ normal(0, 2)
if X < 1:
    Z ~ -X**3 + X**2 + 6*X
else:
    Z ~ -5*sqrt(X) + 11
"""


def main() -> None:
    X, Z = Id("X"), Id("Z")
    model = SpplModel.from_source(PROGRAM)

    print("P(X < 1)  =", model.prob(X < 1))
    print("P(Z <= 0) =", model.prob(Z <= 0))
    print("P(Z <= 5) =", model.prob(Z <= 5))

    event = (Z ** 2 <= 4) & (Z >= 0)
    print("\nconditioning on Z**2 <= 4 and Z >= 0 ...")
    posterior = model.condition(event)

    regions = {
        "X in [-2.17, -2.00]": (X >= -2.5) & (X <= -2.0),
        "X in [ 0.00,  0.32]": (X >= 0.0) & (X <= 0.5),
        "X in [ 3.24,  4.84]": (X >= 3.0) & (X <= 5.0),
    }
    print("posterior weight of each X-region (paper: 0.16 / 0.49 / 0.35):")
    for label, region in regions.items():
        print("  %s : %.3f" % (label, posterior.prob(region)))

    print("\nposterior CDF of Z on [0, 2]:")
    for z_value in [0.0, 0.5, 1.0, 1.5, 2.0]:
        print("  P(Z <= %.1f | event) = %.3f" % (z_value, posterior.prob(Z <= z_value)))

    print("\nposterior samples:")
    for sample in posterior.sample(5, seed=0):
        print("  X = %+.3f  Z = %+.3f" % (sample["X"], sample["Z"]))


if __name__ == "__main__":
    main()
