"""Inverse translation: sum-product expressions back to SPPL source code.

Implements the ``->Sppl`` relation of Appendix E (Lst. 8): a Product becomes
a sequence of statements, a Sum becomes a fresh ``choice`` variable followed
by an if/elif chain, and a Leaf becomes a ``~`` sample statement plus ``=``
transform statements for its derived variables.  The rendered program is
semantics-preserving (Eq. 46): re-compiling it yields an SPE that assigns the
same probability to every event (up to the fresh branch-selector variables).
"""

from __future__ import annotations

import math
from typing import List

from ..distributions import AtomicDistribution
from ..distributions import DiscreteDistribution
from ..distributions import DiscreteFinite
from ..distributions import Distribution
from ..distributions import NominalDistribution
from ..distributions import RealDistribution
from ..spe import Leaf
from ..spe import ProductSPE
from ..spe import SPE
from ..spe import SumSPE
from ..transforms import Identity
from ..transforms import Transform


def render_distribution(dist: Distribution) -> str:
    """Render a distribution as SPPL source syntax."""
    if isinstance(dist, AtomicDistribution):
        return "atomic(%r)" % (dist.value,)
    if isinstance(dist, NominalDistribution):
        return "choice(%r)" % ({k: v for k, v in sorted(dist.probabilities.items())},)
    if isinstance(dist, DiscreteFinite):
        return "discrete(%r)" % ({k: v for k, v in sorted(dist.probabilities.items())},)
    if isinstance(dist, (RealDistribution, DiscreteDistribution)):
        frozen = dist.dist
        name = frozen.dist.name
        arguments = [repr(a) for a in frozen.args]
        arguments += ["%s=%r" % (k, v) for k, v in sorted(frozen.kwds.items())]
        if not math.isinf(dist.lo) or dist.lo == 0:
            arguments.append("lo=%r" % (dist.lo,))
        if not math.isinf(dist.hi):
            arguments.append("hi=%r" % (dist.hi,))
        return "scipydist(%r, %s)" % (name, ", ".join(arguments))
    raise TypeError("Cannot render distribution %r." % (dist,))


def render_transform(transform: Transform) -> str:
    """Render a transform as SPPL source syntax (best-effort)."""
    from ..transforms import Abs
    from ..transforms import Exp
    from ..transforms import Log
    from ..transforms import Poly
    from ..transforms import Radical
    from ..transforms import Reciprocal

    if isinstance(transform, Identity):
        return transform.token
    if isinstance(transform, Poly):
        inner = render_transform(transform.subexpr)
        terms = []
        for power, coeff in enumerate(transform.coeffs):
            if coeff == 0:
                continue
            if power == 0:
                terms.append(repr(coeff))
            elif power == 1:
                terms.append("%r*(%s)" % (coeff, inner))
            else:
                terms.append("%r*(%s)**%d" % (coeff, inner, power))
        return " + ".join(terms) if terms else "0"
    if isinstance(transform, Reciprocal):
        return "1/(%s)" % (render_transform(transform.subexpr),)
    if isinstance(transform, Abs):
        return "abs(%s)" % (render_transform(transform.subexpr),)
    if isinstance(transform, Radical):
        return "(%s)**(1/%d)" % (render_transform(transform.subexpr), transform.degree)
    if isinstance(transform, Exp):
        return "exp(%s, %r)" % (render_transform(transform.subexpr), transform.base)
    if isinstance(transform, Log):
        return "log(%s, %r)" % (render_transform(transform.subexpr), transform.base)
    return repr(transform)


class _Renderer:
    def __init__(self):
        self._selector_by_scope = {}

    def fresh_variable(self, scope) -> str:
        """Selector variable for a Sum node.

        Selectors are keyed by the Sum's scope so that structurally-parallel
        mixtures in different branches of an outer mixture reuse the same
        selector name; this keeps the rendered program compliant with
        restriction (R2), which requires if/else branches to define identical
        variables.  Two sums with the same scope can never occur under the
        same product (condition C3), so the reuse never redefines a variable
        along a single program path.
        """
        key = frozenset(scope)
        if key not in self._selector_by_scope:
            self._selector_by_scope[key] = "branch_%d" % (len(self._selector_by_scope) + 1,)
        return self._selector_by_scope[key]

    def render(self, spe: SPE, indent: int = 0) -> List[str]:
        pad = "    " * indent
        if isinstance(spe, Leaf):
            lines = ["%s%s ~ %s" % (pad, spe.symbol, render_distribution(spe.dist))]
            for derived, expression in spe.env.items():
                lines.append(
                    "%s%s ~ %s" % (pad, derived, render_transform(expression))
                )
            return lines
        if isinstance(spe, ProductSPE):
            lines: List[str] = []
            for child in spe.children:
                lines.extend(self.render(child, indent))
            return lines
        if isinstance(spe, SumSPE):
            selector = self.fresh_variable(spe.scope)
            weights = {
                "'case_%d'" % (i,): math.exp(w) for i, w in enumerate(spe.log_weights)
            }
            weight_source = ", ".join("%s: %r" % (k, v) for k, v in weights.items())
            lines = ["%s%s ~ choice({%s})" % (pad, selector, weight_source)]
            for i, child in enumerate(spe.children):
                keyword = "if" if i == 0 else "elif"
                lines.append(
                    "%s%s (%s == 'case_%d'):" % (pad, keyword, selector, i)
                )
                lines.extend(self.render(child, indent + 1))
            return lines
        raise TypeError("Cannot render SPE node %r." % (spe,))


def render_spe(spe: SPE) -> str:
    """Render a sum-product expression as an SPPL source program."""
    return "\n".join(_Renderer().render(spe)) + "\n"
