"""Derived exact queries on sum-product expressions.

Beyond the primitive queries (probability, conditioning, density, sampling),
several useful quantities can be computed exactly from them:

* :func:`probability_table` -- marginal probability tables,
* :func:`mutual_information` -- mutual information between two events,
* :func:`entropy` -- entropy of a finite-valued program variable,
* :func:`expectation` / :func:`variance` -- moments of a numeric variable,
* :func:`cdf_table` -- the marginal CDF of a numeric variable on a grid.

These mirror the auxiliary queries shipped with the reference SPPL system
and are used by the examples and benchmark reports.  Every function accepts
an optional ``memo`` so callers (e.g. :class:`~repro.engine.SpplModel`) can
route the traversals through a persistent
:class:`~repro.spe.base.QueryCache`; the structural traversals are
iterative, so deep chain models (long HMMs) are safe.
"""

from __future__ import annotations

import math
from typing import Dict
from typing import Iterable
from typing import List
from typing import Sequence

from ..distributions import NEG_INF
from ..events import Event
from ..transforms import Id
from .base import Memo
from .base import SPE
from .leaf import Leaf
from .product_node import ProductSPE
from .sum_node import SumSPE


def probability_table(
    spe: SPE, symbol: str, values: Iterable, memo: Memo = None
) -> Dict[object, float]:
    """Exact marginal probabilities ``P(symbol == v)`` for each value."""
    variable = Id(symbol)
    memo = memo if memo is not None else Memo()
    return {value: spe.prob(variable == value, memo=memo) for value in values}


def cdf_table(
    spe: SPE, symbol: str, grid: Sequence[float], memo: Memo = None
) -> Dict[float, float]:
    """Exact marginal CDF ``P(symbol <= g)`` on a grid of points."""
    variable = Id(symbol)
    memo = memo if memo is not None else Memo()
    return {float(g): spe.prob(variable <= g, memo=memo) for g in grid}


def mutual_information(
    spe: SPE, event_a: Event, event_b: Event, memo: Memo = None
) -> float:
    """Mutual information (in nats) between the indicators of two events."""
    memo = memo if memo is not None else Memo()
    total = 0.0
    for a in (event_a, event_a.negate()):
        for b in (event_b, event_b.negate()):
            log_joint = spe.logprob(a & b, memo=memo)
            if log_joint == NEG_INF:
                continue
            log_marginal_a = spe.logprob(a, memo=memo)
            log_marginal_b = spe.logprob(b, memo=memo)
            joint = math.exp(log_joint)
            total += joint * (log_joint - log_marginal_a - log_marginal_b)
    return max(total, 0.0)


def entropy(spe: SPE, symbol: str, values: Iterable, memo: Memo = None) -> float:
    """Entropy (in nats) of a finite-valued program variable."""
    table = probability_table(spe, symbol, values, memo=memo)
    total = sum(table.values())
    if not math.isclose(total, 1.0, abs_tol=1e-6):
        raise ValueError(
            "The provided values cover probability %.6f of %r; entropy "
            "requires an exhaustive list of values." % (total, symbol)
        )
    return -sum(p * math.log(p) for p in table.values() if p > 0.0)


def _leaf_moment(leaf: Leaf, order: int) -> float:
    """Raw moment of order 1 or 2 of a leaf's base variable."""
    from ..distributions import AtomicDistribution
    from ..distributions import DiscreteDistribution
    from ..distributions import DiscreteFinite
    from ..distributions import NominalDistribution
    from ..distributions import RealDistribution

    dist = leaf.dist
    if isinstance(dist, AtomicDistribution):
        return dist.value ** order
    if isinstance(dist, (DiscreteFinite,)):
        return sum(p * (v ** order) for v, p in dist.probabilities.items())
    if isinstance(dist, NominalDistribution):
        raise ValueError("Moments are undefined for nominal variable %r." % (leaf.symbol,))
    if isinstance(dist, (RealDistribution, DiscreteDistribution)):
        frozen = dist.dist
        lb, ub = dist.lo, dist.hi
        if isinstance(dist, RealDistribution):
            value = frozen.expect(lambda x: x ** order, lb=lb, ub=ub, conditional=True)
        else:
            lo = int(lb) if math.isfinite(lb) else int(frozen.ppf(1e-12))
            hi = int(ub) if math.isfinite(ub) else int(frozen.ppf(1.0 - 1e-12))
            weights = [(k, float(frozen.pmf(k))) for k in range(lo, hi + 1)]
            mass = sum(w for _, w in weights)
            value = sum(w * (k ** order) for k, w in weights) / mass
        return float(value)
    raise TypeError("Cannot compute moments for distribution %r." % (dist,))


def _moment(spe: SPE, symbol: str, order: int) -> float:
    """Raw moment of a numeric variable (iterative, memoized on node uid)."""
    cache: Dict[int, float] = {}
    stack: List[SPE] = [spe]
    while stack:
        node = stack[-1]
        if node._uid in cache:
            stack.pop()
            continue
        if isinstance(node, Leaf):
            if symbol != node.symbol:
                raise ValueError(
                    "Moments are only supported for non-transformed variables; "
                    "%r is derived." % (symbol,)
                )
            cache[node._uid] = _leaf_moment(node, order)
            stack.pop()
            continue
        if isinstance(node, SumSPE):
            pending = [c for c in node.children if c._uid not in cache]
            if pending:
                stack.extend(pending)
                continue
            cache[node._uid] = sum(
                math.exp(w) * cache[child._uid]
                for w, child in zip(node.log_weights, node.children)
            )
            stack.pop()
            continue
        if isinstance(node, ProductSPE):
            owner = None
            for child in node.children:
                if symbol in child.scope:
                    owner = child
                    break
            if owner is None:
                raise KeyError("Variable %r is not in scope." % (symbol,))
            if owner._uid not in cache:
                stack.append(owner)
                continue
            cache[node._uid] = cache[owner._uid]
            stack.pop()
            continue
        raise TypeError("Unknown SPE node %r." % (node,))
    return cache[spe._uid]


def expectation(spe: SPE, symbol: str) -> float:
    """Exact expectation of a numeric, non-transformed program variable."""
    if symbol not in spe.scope:
        raise KeyError("Variable %r is not in scope." % (symbol,))
    return _moment(spe, symbol, 1)


def variance(spe: SPE, symbol: str) -> float:
    """Exact variance of a numeric, non-transformed program variable."""
    mean = expectation(spe, symbol)
    second = _moment(spe, symbol, 2)
    return max(second - mean * mean, 0.0)


def marginal_support(spe: SPE, symbol: str) -> List[object]:
    """The set of values a finite-valued variable can take (sorted)."""
    from ..distributions import AtomicDistribution
    from ..distributions import DiscreteFinite
    from ..distributions import NominalDistribution

    if symbol not in spe.scope:
        raise KeyError("Variable %r is not in scope." % (symbol,))

    values = set()
    seen = set()
    stack: List[SPE] = [spe]
    while stack:
        node = stack.pop()
        if node._uid in seen:
            continue
        seen.add(node._uid)
        if isinstance(node, Leaf):
            if node.symbol != symbol:
                continue
            if isinstance(node.dist, DiscreteFinite):
                values.update(node.dist.probabilities)
            elif isinstance(node.dist, AtomicDistribution):
                values.add(node.dist.value)
            elif isinstance(node.dist, NominalDistribution):
                values.update(node.dist.probabilities)
            else:
                raise ValueError(
                    "Variable %r does not have a finite support." % (symbol,)
                )
            continue
        for child in node.children_nodes():
            if symbol in child.scope:
                stack.append(child)
    return sorted(values, key=lambda v: (isinstance(v, str), v))


# ---------------------------------------------------------------------------
# Scope metadata for the query planner's cost model.
# ---------------------------------------------------------------------------

def scope_node_counts(spe: SPE) -> Dict[str, int]:
    """Per-variable node counts: how many graph nodes mention each symbol.

    One iterative walk over the unique nodes of the graph; the counts are
    the raw material of the planner's visited-node cost estimate (a query
    touching symbol ``s`` visits every node whose scope contains ``s``,
    plus sum ancestors that fan the restriction out).
    """
    counts: Dict[str, int] = {}
    seen = set()
    stack = [spe]
    while stack:
        node = stack.pop()
        if node._uid in seen:
            continue
        seen.add(node._uid)
        for symbol in node.scope:
            counts[symbol] = counts.get(symbol, 0) + 1
        if not isinstance(node, Leaf):
            stack.extend(node.children_nodes())
    return counts


def estimate_visited_nodes(spe: SPE, symbols) -> int:
    """Estimated node visits for a query touching ``symbols``.

    Counts the unique nodes whose scope intersects the symbol set — the
    nodes a restricted traversal cannot skip.  Sum nodes fan a multi-scope
    restriction to every child, so this undercounts repeated visits, but
    it orders candidate subqueries correctly: a query over a small scope
    in a deep graph beats one whose symbols thread through everything.
    """
    wanted = frozenset(symbols)
    if not wanted:
        return 0
    visited = 0
    seen = set()
    stack = [spe]
    while stack:
        node = stack.pop()
        if node._uid in seen:
            continue
        seen.add(node._uid)
        if not (node.scope & wanted):
            continue
        visited += 1
        if not isinstance(node, Leaf):
            stack.extend(
                child for child in node.children_nodes()
                if child.scope & wanted
            )
    return visited
